"""HIT rendering: the worker-facing side of the crowdsourcing substrate.

A deployable crowd dedup system must turn record pairs into the question
forms workers actually see (the paper packs 20 pairs per HIT and asks
"do r_i and r_j refer to the same entity?").  This module renders
:class:`~repro.crowd.hits.Hit` objects to plain text or minimal HTML (the
iFrame-embeddable form AMT uses) and parses worker form submissions back
into votes.
"""

from __future__ import annotations

import html
from typing import Dict, Mapping, Tuple

from repro.crowd.hits import Hit
from repro.datasets.schema import Record

Pair = Tuple[int, int]

QUESTION = "Do these two records refer to the same real-world entity?"


def render_hit_text(hit: Hit, records: Mapping[int, Record]) -> str:
    """A plain-text HIT: numbered pair questions with yes/no prompts.

    Useful for logs, previews, and terminal-based annotation.
    """
    lines = [f"HIT #{hit.hit_id} — {QUESTION}", ""]
    for index, (a, b) in enumerate(hit.pairs, start=1):
        lines.append(f"Q{index}:")
        lines.append(f"  A: {records[a].text}")
        lines.append(f"  B: {records[b].text}")
        lines.append("  [ ] same entity   [ ] different entities")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def render_hit_html(hit: Hit, records: Mapping[int, Record]) -> str:
    """A minimal self-contained HTML form for one HIT.

    Each question is a radio group named ``q<pair_a>_<pair_b>`` with values
    ``same`` / ``different`` — the format :func:`parse_submission` reads.
    """
    rows = []
    for a, b in hit.pairs:
        name = f"q{a}_{b}"
        rows.append(
            "<fieldset>"
            f"<legend>{html.escape(QUESTION)}</legend>"
            f"<p>A: {html.escape(records[a].text)}</p>"
            f"<p>B: {html.escape(records[b].text)}</p>"
            f'<label><input type="radio" name="{name}" value="same"> '
            "Same entity</label> "
            f'<label><input type="radio" name="{name}" value="different"> '
            "Different entities</label>"
            "</fieldset>"
        )
    body = "\n".join(rows)
    return (
        "<!DOCTYPE html>\n"
        f"<html><head><title>HIT {hit.hit_id}</title></head>\n"
        f'<body><form method="post" id="hit{hit.hit_id}">\n'
        f"{body}\n"
        '<button type="submit">Submit</button>\n'
        "</form></body></html>\n"
    )


def parse_submission(form: Mapping[str, str]) -> Dict[Pair, bool]:
    """Parse a worker's form submission into per-pair duplicate votes.

    Args:
        form: Field name -> value, as produced by the HTML form
            (``q<a>_<b>`` -> ``"same"`` or ``"different"``).  Non-question
            fields are ignored.

    Returns:
        Mapping from canonical pair to ``True`` (same) / ``False``.

    Raises:
        ValueError: On a malformed question name or vote value.
    """
    votes: Dict[Pair, bool] = {}
    for field_name, value in form.items():
        if not field_name.startswith("q"):
            continue
        try:
            a_text, b_text = field_name[1:].split("_", 1)
            a, b = int(a_text), int(b_text)
        except ValueError:
            raise ValueError(f"malformed question field {field_name!r}") from None
        if value not in ("same", "different"):
            raise ValueError(
                f"vote for {field_name!r} must be 'same' or 'different', "
                f"got {value!r}"
            )
        pair = (a, b) if a < b else (b, a)
        votes[pair] = value == "same"
    return votes
