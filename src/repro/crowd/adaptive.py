"""Adaptive worker assignment — the paper's stated future work.

Section 8: *"For future work, we plan to further improve the performance of
ACD by investigating techniques for adaptively assigning more crowd workers
to more difficult record pairs."*

:class:`AdaptiveAnswerFile` implements the natural escalation policy: every
pair starts with a small panel of workers; when the vote is *split* (the
majority margin is below a threshold), the pair is escalated to a larger
panel.  Difficult pairs — the ones whose latent error probability is close
to a coin flip — are exactly the ones that produce split votes, so they
organically receive more workers, while easy pairs stay cheap.

The class is answer-file compatible (``confidence`` / ``num_workers`` /
``prefetch``), so the whole algorithm stack runs on it unchanged; the
per-pair vote spend is tracked for the cost accounting of the extension
experiment (``benchmarks/test_ext_adaptive_assignment.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.crowd.worker import WorkerPool
from repro.datasets.schema import GoldStandard, canonical_pair

Pair = Tuple[int, int]


class AdaptiveAnswerFile:
    """Crowd answers with split-vote escalation.

    Args:
        gold: Ground truth (seen only by the simulator).
        workers: Base worker pool; its ``num_workers`` is the initial panel.
        escalated_workers: Panel size after escalation (must be larger).
        margin: Escalate when ``|duplicate_votes - half| <= margin`` votes,
            i.e. the initial panel was nearly tied.  With the default
            3-worker panel and margin 1, any 2-1 vote escalates while 3-0
            votes stand.
    """

    def __init__(self, gold: GoldStandard, workers: WorkerPool,
                 escalated_workers: int = 7, margin: int = 1):
        if escalated_workers <= workers.num_workers:
            raise ValueError(
                "escalated_workers must exceed the base panel "
                f"({escalated_workers} <= {workers.num_workers})"
            )
        if margin < 0:
            raise ValueError(f"margin must be >= 0, got {margin}")
        self._gold = gold
        self._base = workers
        self._escalated = WorkerPool(
            difficulty=workers.difficulty, num_workers=escalated_workers
        )
        self._margin = margin
        self._answers: Dict[Pair, float] = {}
        self._votes_spent: Dict[Pair, int] = {}

    @property
    def num_workers(self) -> int:
        """The *base* panel size (used for HIT cost baselines)."""
        return self._base.num_workers

    def __len__(self) -> int:
        return len(self._answers)

    def _is_split(self, duplicate_votes: int, panel: int) -> bool:
        # Distance of the vote from unanimity, measured against the margin:
        # a vote is "split" when the minority got more than (margin - 1)
        # votes... i.e. min(yes, no) >= ceil(margin/1)?  We use the simple
        # rule: minority votes >= 1 and |yes - no| <= margin.
        minority = min(duplicate_votes, panel - duplicate_votes)
        return minority > 0 and abs(2 * duplicate_votes - panel) <= self._margin

    def confidence(self, record_a: int, record_b: int) -> float:
        """Crowd confidence with escalation, memoized per pair."""
        pair = canonical_pair(record_a, record_b)
        cached = self._answers.get(pair)
        if cached is not None:
            return cached
        truth = self._gold.is_duplicate(*pair)
        base_votes = self._base.votes(pair[0], pair[1], truth)
        panel = self._base.num_workers
        if self._is_split(base_votes, panel):
            escalated_votes = self._escalated.votes(pair[0], pair[1], truth)
            confidence = escalated_votes / self._escalated.num_workers
            spent = panel + self._escalated.num_workers
        else:
            confidence = base_votes / panel
            spent = panel
        self._answers[pair] = confidence
        self._votes_spent[pair] = spent
        return confidence

    def majority_duplicate(self, record_a: int, record_b: int) -> bool:
        return self.confidence(record_a, record_b) > 0.5

    def prefetch(self, pairs: Iterable[Pair]) -> None:
        for a, b in pairs:
            self.confidence(a, b)

    # ------------------------------------------------------------------
    # Extension-experiment measurements
    # ------------------------------------------------------------------

    def votes_spent(self, record_a: int, record_b: int) -> int:
        """Worker judgements consumed by a pair (after it was answered)."""
        return self._votes_spent[canonical_pair(record_a, record_b)]

    def total_votes_spent(self) -> int:
        return sum(self._votes_spent.values())

    def escalation_rate(self) -> float:
        """Fraction of answered pairs that were escalated."""
        if not self._votes_spent:
            return 0.0
        escalated = sum(
            1 for spent in self._votes_spent.values()
            if spent > self._base.num_workers
        )
        return escalated / len(self._votes_spent)

    def majority_error_rate(self, pairs: Iterable[Pair]) -> float:
        """Fraction of pairs whose (possibly escalated) majority vote
        disagrees with the gold truth — comparable to Table 3's column."""
        total = 0
        wrong = 0
        for a, b in pairs:
            total += 1
            if self.majority_duplicate(a, b) != self._gold.is_duplicate(a, b):
                wrong += 1
        return wrong / total if total else 0.0
