"""A worker-level AMT model: named workers, reliability, qualification.

The paper's two crowd settings differ in *who* answers: the 5-worker
setting requires a qualification test, 100 approved HITs, and a >= 95%
approval rate (Section 6.1).  The :class:`WorkerPool` abstraction models the
*aggregate* effect of that; this module models the mechanism itself, so the
qualification policies can be studied directly:

- :class:`SimulatedWorker` — one worker with an individual reliability
  (per-answer correctness probability on non-confusing pairs) and an
  AMT-style track record (approved HITs, approval rate);
- :class:`Workforce` — a population of workers drawn from a Beta
  reliability distribution, with qualification filters;
- :class:`WorkforceAnswerFile` — an answer-file-compatible source where
  each pair is judged by ``panel_size`` workers sampled from the (possibly
  filtered) workforce; pair difficulty still comes from a shared
  :class:`DifficultyModel`, so confusing pairs stay confusing for everyone.

Answers are deterministic in (workforce seed, pair), replayable like every
other answer source in this package.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.crowd.seeding import stable_rng
from repro.crowd.worker import DifficultyModel
from repro.datasets.schema import GoldStandard, canonical_pair

Pair = Tuple[int, int]

#: Worker personas: honest workers follow their reliability; spammers
#: answer at chance regardless of the pair; adversarial workers invert the
#: truth as hard as the simulator's error cap allows.
HONEST = "honest"
SPAMMER = "spammer"
ADVERSARIAL = "adversarial"

PERSONAS = (HONEST, SPAMMER, ADVERSARIAL)


@dataclass(frozen=True)
class SimulatedWorker:
    """One crowd worker.

    Attributes:
        worker_id: Stable identifier.
        reliability: Probability of answering correctly on a pair with no
            intrinsic difficulty (clamped into [0, 1]).
        approved_hits: AMT track record: lifetime approved HITs.
        approval_rate: AMT track record: fraction of submitted work
            approved.
        persona: :data:`HONEST`, :data:`SPAMMER`, or :data:`ADVERSARIAL`.
    """

    worker_id: int
    reliability: float
    approved_hits: int
    approval_rate: float
    persona: str = HONEST

    def __post_init__(self) -> None:
        if not 0.0 <= self.reliability <= 1.0:
            raise ValueError(
                f"reliability must be in [0, 1], got {self.reliability}"
            )
        if not 0.0 <= self.approval_rate <= 1.0:
            raise ValueError(
                f"approval_rate must be in [0, 1], got {self.approval_rate}"
            )
        if self.persona not in PERSONAS:
            raise ValueError(
                f"persona must be one of {PERSONAS}, got {self.persona!r}"
            )

    def error_probability(self, pair_difficulty: float) -> float:
        """The worker's error probability on a pair.

        The pair's intrinsic difficulty dominates: a genuinely confusing
        pair (difficulty near 0.5) is confusing even for a reliable worker;
        on easy pairs the worker's own unreliability is what remains.
        Spammers answer at chance; adversarial workers are wrong as often
        as the simulator's 0.95 error cap allows.
        """
        if self.persona == SPAMMER:
            return 0.5
        if self.persona == ADVERSARIAL:
            return 0.95
        own_error = 1.0 - self.reliability
        return min(0.95, max(pair_difficulty, own_error))


class Workforce:
    """A population of simulated workers with qualification filtering."""

    def __init__(
        self,
        size: int = 200,
        reliability_alpha: float = 14.0,
        reliability_beta: float = 2.0,
        seed: int = 0,
        spam_fraction: float = 0.0,
        adversarial_fraction: float = 0.0,
    ):
        """Args:
        size: Number of workers in the population.
        reliability_alpha: Alpha of the Beta reliability distribution
            (defaults give mean reliability 0.875 with a long bad tail —
            the AMT regime reported in quality-control studies [29, 45]).
        reliability_beta: Beta of the distribution.
        seed: Population seed.
        spam_fraction: Fraction of workers answering at chance.
        adversarial_fraction: Fraction answering adversarially.

        Personas are assigned from a *separate* seed stream, so a
        population with ``spam_fraction=0`` is identical — same ids, same
        reliabilities — to one built without the argument.
        """
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        for name, value in (("spam_fraction", spam_fraction),
                            ("adversarial_fraction", adversarial_fraction)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if spam_fraction + adversarial_fraction > 1.0:
            raise ValueError(
                "spam_fraction + adversarial_fraction must be <= 1"
            )
        self.seed = seed
        self.spam_fraction = spam_fraction
        self.adversarial_fraction = adversarial_fraction
        rng = stable_rng(seed, "workforce")
        self._workers: List[SimulatedWorker] = []
        for worker_id in range(size):
            reliability = rng.betavariate(reliability_alpha, reliability_beta)
            # Track record correlates loosely with reliability.
            approved = int(rng.expovariate(1 / 150.0))
            approval = min(1.0, max(0.5, reliability + rng.uniform(-0.1, 0.1)))
            self._workers.append(SimulatedWorker(
                worker_id=worker_id,
                reliability=reliability,
                approved_hits=approved,
                approval_rate=approval,
            ))
        num_spam = int(round(size * spam_fraction))
        num_adversarial = int(round(size * adversarial_fraction))
        num_spam = min(num_spam, size)
        num_adversarial = min(num_adversarial, size - num_spam)
        if num_spam or num_adversarial:
            persona_rng = stable_rng(seed, "personas", num_spam,
                                     num_adversarial)
            flagged = persona_rng.sample(range(size),
                                         num_spam + num_adversarial)
            for position, index in enumerate(flagged):
                persona = SPAMMER if position < num_spam else ADVERSARIAL
                self._workers[index] = replace(self._workers[index],
                                               persona=persona)

    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self):
        return iter(self._workers)

    def workers(self) -> List[SimulatedWorker]:
        return list(self._workers)

    def qualified(
        self,
        min_approved_hits: int = 0,
        min_approval_rate: float = 0.0,
        passes_test: Optional[Callable[[SimulatedWorker], bool]] = None,
    ) -> "Workforce":
        """The sub-population passing AMT-style qualification filters.

        The paper's 5-worker setting used ``min_approved_hits=100`` and
        ``min_approval_rate=0.95`` plus a qualification test; model the
        test as any predicate over workers (default: none).

        Returns:
            A new :class:`Workforce` view over the qualifying workers.

        Raises:
            ValueError: If no worker qualifies.
        """
        kept = [
            worker for worker in self._workers
            if worker.approved_hits >= min_approved_hits
            and worker.approval_rate >= min_approval_rate
            and (passes_test is None or passes_test(worker))
        ]
        if not kept:
            raise ValueError("no worker passes the qualification filters")
        filtered = Workforce.__new__(Workforce)
        filtered.seed = self.seed
        filtered.spam_fraction = self.spam_fraction
        filtered.adversarial_fraction = self.adversarial_fraction
        filtered._workers = kept
        return filtered

    def mean_reliability(self) -> float:
        return sum(w.reliability for w in self._workers) / len(self._workers)

    def persona_counts(self) -> Dict[str, int]:
        """How many workers hold each persona (zero-filled)."""
        counts = {persona: 0 for persona in PERSONAS}
        for worker in self._workers:
            counts[worker.persona] += 1
        return counts


class WorkforceAnswerFile:
    """Answer-file-compatible source backed by a worker population.

    Each pair is judged by ``panel_size`` workers sampled (deterministically
    per pair) from the workforce; the confidence is the fraction voting
    duplicate.  Tracks which workers judged which pair for audit-style
    inspection.
    """

    def __init__(
        self,
        gold: GoldStandard,
        workforce: Workforce,
        difficulty: DifficultyModel,
        panel_size: int = 3,
    ):
        if panel_size < 1:
            raise ValueError(f"panel_size must be >= 1, got {panel_size}")
        if panel_size > len(workforce):
            raise ValueError(
                f"panel_size {panel_size} exceeds workforce size {len(workforce)}"
            )
        self._gold = gold
        self._workforce = workforce
        self._difficulty = difficulty
        self.num_workers = panel_size
        self._answers: Dict[Pair, float] = {}
        self._panels: Dict[Pair, Tuple[int, ...]] = {}
        self._votes: Dict[Pair, Tuple[Tuple[int, bool], ...]] = {}

    def __len__(self) -> int:
        return len(self._answers)

    def confidence(self, record_a: int, record_b: int) -> float:
        pair = canonical_pair(record_a, record_b)
        cached = self._answers.get(pair)
        if cached is not None:
            return cached
        rng = stable_rng(self._workforce.seed, "panel", pair[0], pair[1],
                         self.num_workers)
        panel = rng.sample(self._workforce.workers(), self.num_workers)
        truth = self._gold.is_duplicate(*pair)
        pair_difficulty = self._difficulty.error_probability(*pair)
        duplicate_votes = 0
        votes = []
        for worker in panel:
            wrong = rng.random() < worker.error_probability(pair_difficulty)
            voted_duplicate = truth != wrong
            votes.append((worker.worker_id, voted_duplicate))
            if voted_duplicate:
                duplicate_votes += 1
        confidence = duplicate_votes / self.num_workers
        self._answers[pair] = confidence
        self._panels[pair] = tuple(worker.worker_id for worker in panel)
        self._votes[pair] = tuple(votes)
        return confidence

    def votes(self, record_a: int, record_b: int) -> Tuple[Tuple[int, bool], ...]:
        """Per-worker votes ``(worker_id, voted_duplicate)`` for an already
        answered pair — the raw material for truth inference."""
        return self._votes[canonical_pair(record_a, record_b)]

    def all_votes(self) -> Dict[Pair, Tuple[Tuple[int, bool], ...]]:
        """Every answered pair's per-worker votes (a copy)."""
        return dict(self._votes)

    def majority_duplicate(self, record_a: int, record_b: int) -> bool:
        return self.confidence(record_a, record_b) > 0.5

    def prefetch(self, pairs: Iterable[Pair]) -> None:
        for a, b in pairs:
            self.confidence(a, b)

    def panel(self, record_a: int, record_b: int) -> Tuple[int, ...]:
        """The worker ids that judged an (already answered) pair."""
        return self._panels[canonical_pair(record_a, record_b)]

    def majority_error_rate(self, pairs: Iterable[Pair]) -> float:
        """Fraction of pairs whose majority vote disagrees with the truth."""
        total = 0
        wrong = 0
        for a, b in pairs:
            total += 1
            if self.majority_duplicate(a, b) != self._gold.is_duplicate(a, b):
                wrong += 1
        return wrong / total if total else 0.0
