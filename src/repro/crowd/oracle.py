"""The crowd oracle: the only interface algorithms use to reach the crowd.

A :class:`CrowdOracle` wraps a shared :class:`~repro.crowd.cache.AnswerFile`
(so every method replays identical answers) and a per-run
:class:`~repro.crowd.stats.CrowdStats` (so each method's costs are accounted
separately).  Batched queries model crowd iterations: one ``ask_batch`` call
that issues at least one *new* pair counts as one crowd iteration.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.crowd.cache import AnswerFile
from repro.crowd.stats import CrowdStats
from repro.datasets.schema import canonical_pair

Pair = Tuple[int, int]


class CrowdOracle:
    """Per-run view onto the shared crowd answers, with cost accounting.

    The oracle also exposes the set ``A`` of already-crowdsourced pairs and
    their confidences, which the refinement phase needs (Algorithm 4 takes
    ``A`` as input).
    """

    def __init__(self, answers: AnswerFile, stats: Optional[CrowdStats] = None,
                 obs=None):
        """Args:
        answers: The shared crowd answer source ``F``.
        stats: Per-run cost counters (fresh ones when ``None``).
        obs: Optional :class:`~repro.obs.ObsContext`; when attached,
            every crowd iteration emits a ``crowd.batch`` trace event and
            updates the crowd counters in the metrics registry.  ``None``
            (the default) observes nothing and costs nothing.
        """
        self._answers = answers
        self.stats = stats if stats is not None else CrowdStats(
            num_workers=answers.num_workers
        )
        self._known: Dict[Pair, float] = {}
        # Append-only log of pairs as they transitioned unknown -> known.
        # Incremental consumers keep a cursor into it (``answers_since``)
        # instead of re-scanning the whole of ``A`` for deltas.
        self._answer_log: List[Pair] = []
        self._obs = obs

    @property
    def num_workers(self) -> int:
        return self._answers.num_workers

    @property
    def source(self):
        """The underlying answer source this oracle crowdsources through."""
        return self._answers

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def ask(self, record_a: int, record_b: int) -> float:
        """Crowdsource a single pair (its own one-pair batch if new).

        Returns the crowd confidence ``f_c`` in [0, 1].
        """
        return self.ask_batch([(record_a, record_b)])[canonical_pair(record_a, record_b)]

    def ask_batch(self, pairs: Iterable[Pair]) -> Dict[Pair, float]:
        """Crowdsource a batch of pairs in one crowd iteration.

        Pairs already answered in this run are served from ``A`` for free;
        the batch costs one iteration iff it contains at least one new pair.

        When the answer source implements ``confidence_batch(pairs)`` (a
        live crowd client posting whole HIT batches at once), the fresh
        pairs are delivered in a single call; otherwise each fresh pair is
        resolved through ``confidence(a, b)``.

        Returns:
            Mapping from canonical pair to crowd confidence, covering every
            requested pair (new and previously known).
        """
        requested: List[Pair] = [canonical_pair(a, b) for a, b in pairs]
        fresh: Set[Pair] = {pair for pair in requested if pair not in self._known}
        if fresh:
            batch_resolver = getattr(self._answers, "confidence_batch", None)
            if batch_resolver is not None:
                resolved = batch_resolver(sorted(fresh))
                for pair in fresh:
                    self._known[pair] = resolved[pair]
            else:
                for pair in fresh:
                    self._known[pair] = self._answers.confidence(*pair)
            self._answer_log.extend(sorted(fresh))
            self._drain_fault_counters()
        self.stats.record_batch(len(fresh))
        if self._obs is not None and fresh:
            self._observe_batch(len(fresh))
        return {pair: self._known[pair] for pair in requested}

    def _observe_batch(self, fresh_pairs: int) -> None:
        """Mirror one paid crowd iteration into the attached ObsContext.

        The span/metric layer wraps the existing accounting — the numbers
        are read *from* :class:`CrowdStats` after ``record_batch``, never
        computed twice — so the rollup in a manifest always equals the
        stats snapshot.
        """
        metrics = self._obs.metrics
        metrics.counter(
            "crowd_pairs_issued_total",
            help="Unique record pairs sent to the crowd",
        ).inc(fresh_pairs)
        metrics.counter(
            "crowd_iterations_total",
            help="Crowd iterations (HIT batches posted and awaited)",
        ).inc()
        hits = metrics.counter("crowd_hits_total", help="HITs posted")
        hits.inc(self.stats.hits - hits.value)
        votes = metrics.counter(
            "crowd_votes_total", help="Worker judgements collected",
        )
        votes.inc(self.stats.votes - votes.value)
        metrics.histogram(
            "crowd_batch_pairs", help="Fresh pairs per crowd iteration",
        ).observe(fresh_pairs)
        self._obs.event(
            "crowd.batch",
            pairs=fresh_pairs,
            iteration=self.stats.iterations,
            pairs_issued_total=self.stats.pairs_issued,
            hits_total=self.stats.hits,
        )

    def _drain_fault_counters(self) -> None:
        """Fold the answer source's crowd-side failures into the stats.

        Fault-injecting sources (a platform with a
        :class:`~repro.crowd.faults.FaultModel`, or a journaling wrapper
        replaying one) expose ``drain_fault_counters()``; plain sources
        don't, and cost nothing here.
        """
        drain = getattr(self._answers, "drain_fault_counters", None)
        if drain is None:
            return
        counters = drain()
        if counters:
            self.stats.record_faults(**counters)

    def degraded_pairs(self) -> frozenset:
        """Pairs the answer source served degraded (empty for fault-free
        sources)."""
        source = getattr(self._answers, "degraded_pairs", None)
        if source is None:
            return frozenset()
        return frozenset(source())

    # ------------------------------------------------------------------
    # The known-answer set A
    # ------------------------------------------------------------------

    def knows(self, record_a: int, record_b: int) -> bool:
        """True iff the pair has already been crowdsourced in this run."""
        return canonical_pair(record_a, record_b) in self._known

    def known_confidence(self, record_a: int, record_b: int) -> Optional[float]:
        """The confidence for a pair if already crowdsourced, else ``None``.

        Never triggers crowdsourcing — safe to call when only *checking*
        whether a benefit is computable without cost.
        """
        return self._known.get(canonical_pair(record_a, record_b))

    def known_pairs(self) -> Dict[Pair, float]:
        """A copy of the answered-pair set ``A`` with confidences."""
        return dict(self._known)

    def known_in_order(self) -> List[Tuple[Pair, float]]:
        """``A`` as (pair, confidence) in the order pairs became known —
        the checkpointable form: replaying it through :meth:`seed_known`
        reproduces both ``A`` and the answer log exactly."""
        return [(pair, self._known[pair]) for pair in self._answer_log]

    def seed_known(self, answers: Dict[Pair, float]) -> None:
        """Pre-populate ``A`` without cost (hand-off between phases:
        the refinement phase starts with the generation phase's answers)."""
        for (a, b), confidence in answers.items():
            pair = canonical_pair(a, b)
            if pair not in self._known:
                self._answer_log.append(pair)
            self._known[pair] = confidence

    @property
    def answer_epoch(self) -> int:
        """Length of the answer log; grows by one per newly known pair.

        ``A`` is append-only within a run (answers are cached, never
        revised), so a cursor taken at epoch ``e`` plus
        :meth:`answers_since` fully reconstructs every later transition.
        """
        return len(self._answer_log)

    def answers_since(self, cursor: int) -> List[Pair]:
        """The pairs that became known after ``cursor`` (a prior
        :attr:`answer_epoch` value), in arrival order."""
        return self._answer_log[cursor:]
