"""The crowd fault model: what a real platform does to your HITs.

The rest of this package simulates a crowd that always answers.  Real
platforms do not behave that way: CrowdER-style AMT deployments report
workers abandoning assignments mid-way, spam workers clicking through HITs,
assignments expiring unclaimed, and the platform itself going away for
minutes at a time.  :class:`FaultModel` packages those failure modes as one
declarative, seed-stable object that the
:class:`~repro.crowd.platform.PlatformSimulator` event loop consults:

- **abandonment** — a per-assignment probability that the worker walks away
  before submitting (the assignment returns to the queue);
- **timeout** — a per-assignment deadline; a draw-to-completion slower than
  the deadline expires and is requeued;
- **worker personas** — ``spam_fraction`` / ``adversarial_fraction`` of the
  :class:`~repro.crowd.workforce.Workforce` answer randomly / invert the
  truth (quality-control literature's "spammers" and "colluders");
- **outages** — platform-wide windows during which no assignment can start
  or land (submissions are delayed to the window's end);
- **retry policy** — failed assignments are requeued with exponential
  backoff and a bounded per-HIT repost budget;
- **graceful degradation** — optional early quorum (stop collecting votes
  once the majority is mathematically unbeatable) and, when a pair's repost
  budget is exhausted, a machine-score fallback flagged as *degraded*.

All fault randomness is drawn from a dedicated ``stable_rng`` stream that
is *separate* from the vote/timing stream, so a null fault model reproduces
the fault-free simulator byte for byte, and every failure scenario replays
deterministically from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

Pair = Tuple[int, int]

#: Assignment-failure kinds recorded in :class:`FaultEvent`.
ABANDONED = "abandoned"
TIMEOUT = "timeout"

FAULT_KINDS = (ABANDONED, TIMEOUT)


class UnansweredPairError(KeyError):
    """A pair exhausted its repost budget and no fallback policy is set."""

    def __init__(self, pair: Pair):
        super().__init__(pair)
        self.pair = pair

    def __str__(self) -> str:  # KeyError repr-quotes its args; be readable.
        return (
            f"pair {self.pair} exhausted its repost budget with no votes "
            "collected and no fallback policy is configured"
        )


@dataclass(frozen=True)
class FaultEvent:
    """One assignment-level failure observed by the platform.

    Attributes:
        batch_index: The batch the failed assignment belonged to.
        hit_index: HIT index within the batch.
        worker_id: The worker whose assignment failed.
        kind: :data:`ABANDONED` or :data:`TIMEOUT`.
        at: Simulation time the platform learned about the failure.
    """

    batch_index: int
    hit_index: int
    worker_id: int
    kind: str
    at: float


@dataclass(frozen=True)
class FaultModel:
    """Declarative, seed-stable crowd failure configuration.

    Attributes:
        abandonment_probability: Per-assignment probability the worker
            abandons before submitting.
        timeout_seconds: Per-assignment deadline; assignments whose drawn
            duration exceeds it expire (``None`` disables timeouts).
        spam_fraction: Fraction of the workforce answering at chance
            (applied by :class:`~repro.crowd.workforce.Workforce`).
        adversarial_fraction: Fraction of the workforce answering
            adversarially (ditto).
        outages: Platform-outage windows ``(start, end)`` in simulation
            seconds; normalized to a sorted tuple.
        max_reposts: Per-HIT repost budget; once exceeded, the HIT's
            unfilled slots are given up and its pairs flagged degraded.
        backoff_base_seconds: First-retry requeue delay.
        backoff_multiplier: Exponential backoff factor per retry.
        backoff_cap_seconds: Upper bound on any single requeue delay.
        early_quorum: Stop collecting a HIT's assignments once every pair's
            majority verdict is mathematically unbeatable (confidences are
            then vote fractions over the votes actually collected).
    """

    abandonment_probability: float = 0.0
    timeout_seconds: Optional[float] = None
    spam_fraction: float = 0.0
    adversarial_fraction: float = 0.0
    outages: Tuple[Tuple[float, float], ...] = ()
    max_reposts: int = 3
    backoff_base_seconds: float = 60.0
    backoff_multiplier: float = 2.0
    backoff_cap_seconds: float = 3600.0
    early_quorum: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.abandonment_probability <= 1.0:
            raise ValueError(
                "abandonment_probability must be in [0, 1], got "
                f"{self.abandonment_probability}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be > 0, got {self.timeout_seconds}"
            )
        for name in ("spam_fraction", "adversarial_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.spam_fraction + self.adversarial_fraction > 1.0:
            raise ValueError(
                "spam_fraction + adversarial_fraction must be <= 1"
            )
        if self.max_reposts < 0:
            raise ValueError(f"max_reposts must be >= 0, got {self.max_reposts}")
        if self.backoff_base_seconds < 0:
            raise ValueError("backoff_base_seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        windows = []
        for window in self.outages:
            start, end = window
            if not start < end:
                raise ValueError(f"outage window {window} must have start < end")
            windows.append((float(start), float(end)))
        object.__setattr__(self, "outages", tuple(sorted(windows)))

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultModel":
        """The null model: the platform behaves exactly as without faults."""
        return cls()

    @classmethod
    def default(cls) -> "FaultModel":
        """A moderately hostile crowd: the chaos-smoke configuration.

        Workers abandon 5% of assignments, slow assignments time out after
        8 simulated minutes, 8% of the workforce spams and 2% answers
        adversarially, and early quorum is on.
        """
        return cls(
            abandonment_probability=0.05,
            timeout_seconds=480.0,
            spam_fraction=0.08,
            adversarial_fraction=0.02,
            max_reposts=4,
            backoff_base_seconds=30.0,
            early_quorum=True,
        )

    # ------------------------------------------------------------------
    # Queries the event loop makes
    # ------------------------------------------------------------------

    @property
    def is_null(self) -> bool:
        """True iff this model injects no faults at all."""
        return self == FaultModel.none()

    def assignment_failure(self, rng, duration: float):
        """Decide one assignment's fate.

        Args:
            rng: The dedicated fault RNG (never the vote/timing stream).
            duration: The assignment's drawn work duration in seconds.

        Returns:
            ``None`` for a successful assignment, else ``(kind, elapsed)``
            where ``elapsed`` is how long after starting the failure is
            observed by the platform.
        """
        if (self.abandonment_probability > 0.0
                and rng.random() < self.abandonment_probability):
            return ABANDONED, duration * rng.uniform(0.1, 0.9)
        if self.timeout_seconds is not None and duration > self.timeout_seconds:
            return TIMEOUT, self.timeout_seconds
        return None

    def backoff_seconds(self, attempt: int) -> float:
        """Requeue delay before repost number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = (self.backoff_base_seconds
                 * self.backoff_multiplier ** (attempt - 1))
        return min(self.backoff_cap_seconds, delay)

    def in_outage(self, at: float) -> bool:
        """True iff the platform is down at simulation time ``at``."""
        return any(start <= at < end for start, end in self.outages)

    def delay_past_outage(self, at: float) -> float:
        """The earliest time >= ``at`` at which the platform is up."""
        for start, end in self.outages:  # sorted; cascade through windows
            if start <= at < end:
                at = end
        return at
