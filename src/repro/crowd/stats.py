"""Crowdsourcing cost accounting.

The paper reports three costs per method: the number of record pairs
crowdsourced (Figure 7), the number of crowd iterations, i.e. HIT batches
(Figure 8), and implicitly the number of HITs (each HIT packs a fixed number
of pairs and is paid a fixed reward).  :class:`CrowdStats` tracks all three.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class CrowdStats:
    """Mutable per-run crowdsourcing cost counters.

    Attributes:
        pairs_issued: Unique record pairs sent to the crowd in this run.
        iterations: Crowd iterations (batches of HITs posted and awaited).
        hits: HITs posted, assuming ``pairs_per_hit`` pairs per HIT.
        votes: Total worker judgements collected.
        pairs_per_hit: HIT packing factor (paper: 20 pairs in the 3-worker
            setting, 10 in the 5-worker setting).
        reward_cents_per_hit: Payment per HIT per worker (paper: 2 cents).
        retries: Assignment slots reposted after a failure.
        timeouts: Assignments that expired past their deadline.
        abandonments: Assignments abandoned by their worker.
        degraded_pairs: Pairs answered degraded (partial votes or machine
            fallback after the repost budget ran out).
        quorum_stops: HITs closed early because every majority was
            mathematically unbeatable.
    """

    pairs_per_hit: int = 20
    reward_cents_per_hit: float = 2.0
    num_workers: int = 3
    pairs_issued: int = 0
    iterations: int = 0
    hits: int = 0
    votes: int = 0
    retries: int = 0
    timeouts: int = 0
    abandonments: int = 0
    degraded_pairs: int = 0
    quorum_stops: int = 0
    batch_sizes: List[int] = field(default_factory=list)

    def record_batch(self, new_pairs: int) -> None:
        """Account for one crowd iteration issuing ``new_pairs`` fresh pairs.

        A batch with zero new pairs costs nothing: every answer was already
        known, so no HITs are posted and no round-trip to the crowd happens.
        """
        if new_pairs < 0:
            raise ValueError(f"new_pairs must be >= 0, got {new_pairs}")
        if new_pairs == 0:
            return
        self.pairs_issued += new_pairs
        self.iterations += 1
        self.hits += math.ceil(new_pairs / self.pairs_per_hit)
        self.votes += new_pairs * self.num_workers
        self.batch_sizes.append(new_pairs)

    def record_faults(self, retries: int = 0, timeouts: int = 0,
                      abandonments: int = 0, degraded_pairs: int = 0,
                      quorum_stops: int = 0) -> None:
        """Account for crowd-side failures observed during a batch.

        The counts come from a fault-injecting answer source's
        ``drain_fault_counters()`` (e.g.
        :class:`~repro.crowd.platform.PlatformAnswerFile`); a fault-free
        source never reports any.
        """
        for name, count in (("retries", retries), ("timeouts", timeouts),
                            ("abandonments", abandonments),
                            ("degraded_pairs", degraded_pairs),
                            ("quorum_stops", quorum_stops)):
            if count < 0:
                raise ValueError(f"{name} must be >= 0, got {count}")
        self.retries += retries
        self.timeouts += timeouts
        self.abandonments += abandonments
        self.degraded_pairs += degraded_pairs
        self.quorum_stops += quorum_stops

    @property
    def monetary_cost_cents(self) -> float:
        """Total reward paid: HITs x workers x reward per HIT."""
        return self.hits * self.num_workers * self.reward_cents_per_hit

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict view for reports and experiment records."""
        return {
            "pairs_issued": self.pairs_issued,
            "iterations": self.iterations,
            "hits": self.hits,
            "votes": self.votes,
            "cost_cents": self.monetary_cost_cents,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "abandonments": self.abandonments,
            "degraded_pairs": self.degraded_pairs,
            "quorum_stops": self.quorum_stops,
        }

    def to_state(self) -> Dict[str, object]:
        """A JSON-serializable snapshot of every counter (including the
        per-iteration batch sizes, which :meth:`snapshot` omits) — the
        phase-checkpoint form (:mod:`repro.runtime.checkpoint`)."""
        return {
            "pairs_per_hit": self.pairs_per_hit,
            "reward_cents_per_hit": self.reward_cents_per_hit,
            "num_workers": self.num_workers,
            "pairs_issued": self.pairs_issued,
            "iterations": self.iterations,
            "hits": self.hits,
            "votes": self.votes,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "abandonments": self.abandonments,
            "degraded_pairs": self.degraded_pairs,
            "quorum_stops": self.quorum_stops,
            "batch_sizes": list(self.batch_sizes),
        }

    @staticmethod
    def from_state(state: Dict[str, object]) -> "CrowdStats":
        """Rebuild the :meth:`to_state` snapshot, counter for counter."""
        try:
            return CrowdStats(
                pairs_per_hit=int(state["pairs_per_hit"]),
                reward_cents_per_hit=float(state["reward_cents_per_hit"]),
                num_workers=int(state["num_workers"]),
                pairs_issued=int(state["pairs_issued"]),
                iterations=int(state["iterations"]),
                hits=int(state["hits"]),
                votes=int(state["votes"]),
                retries=int(state["retries"]),
                timeouts=int(state["timeouts"]),
                abandonments=int(state["abandonments"]),
                degraded_pairs=int(state["degraded_pairs"]),
                quorum_stops=int(state["quorum_stops"]),
                batch_sizes=[int(size) for size in state["batch_sizes"]],
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(
                f"malformed crowd-stats state ({error})"
            ) from None

    def merge(self, other: "CrowdStats") -> None:
        """Fold another phase's counters into this one (e.g. generation +
        refinement into a whole-pipeline total)."""
        self.pairs_issued += other.pairs_issued
        self.iterations += other.iterations
        self.hits += other.hits
        self.votes += other.votes
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.abandonments += other.abandonments
        self.degraded_pairs += other.degraded_pairs
        self.quorum_stops += other.quorum_stops
        self.batch_sizes.extend(other.batch_sizes)
