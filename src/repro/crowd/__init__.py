"""Simulated crowdsourcing substrate.

Replaces the paper's Amazon Mechanical Turk deployment with a deterministic,
replayable simulator:

- :class:`DifficultyModel` / :class:`WorkerPool` — pair-correlated worker
  error model calibrated to Table 3's measured error rates;
- :class:`AnswerFile` — the paper's recorded answer file ``F``: one shared,
  memoized set of answers that every method replays;
- :class:`CrowdOracle` — the only crowd interface algorithms see, with
  per-run cost accounting (:class:`CrowdStats`);
- HIT packing helpers matching the paper's AMT settings;
- fault tolerance: :class:`FaultModel` fault injection for the platform,
  :class:`FallbackAnswers` machine-score degradation, and
  :class:`AnswerJournal` / :class:`JournalingAnswerFile` crash-safe
  write-ahead persistence with resume.
"""

from repro.crowd.adaptive import AdaptiveAnswerFile
from repro.crowd.cache import AnswerFile, FallbackAnswers, ScriptedAnswers
from repro.crowd.cluster_hits import (
    ClusterHitPlan,
    RecordGroup,
    cluster_based_hits,
    hit_cost_comparison,
    pairs_covered_by,
)
from repro.crowd.faults import (
    FaultEvent,
    FaultModel,
    UnansweredPairError,
)
from repro.crowd.hits import Hit, monetary_cost_cents, num_hits, pack_hits
from repro.crowd.latency import LatencyModel, format_duration
from repro.crowd.oracle import CrowdOracle
from repro.crowd.persistence import (
    AnswerJournal,
    JournalingAnswerFile,
    load_answers,
    save_answers,
)
from repro.crowd.platform import (
    Assignment,
    BatchReceipt,
    PlatformAnswerFile,
    PlatformSimulator,
)
from repro.crowd.render import (
    parse_submission,
    render_hit_html,
    render_hit_text,
)
from repro.crowd.seeding import stable_rng, stable_seed
from repro.crowd.stats import CrowdStats
from repro.crowd.truth_inference import (
    InferredAnswers,
    TruthInferenceResult,
    WorkerEstimate,
    dawid_skene,
)
from repro.crowd.worker import DifficultyModel, WorkerPool
from repro.crowd.workforce import (
    SimulatedWorker,
    Workforce,
    WorkforceAnswerFile,
)

__all__ = [
    "AdaptiveAnswerFile",
    "AnswerFile",
    "AnswerJournal",
    "Assignment",
    "BatchReceipt",
    "ClusterHitPlan",
    "CrowdOracle",
    "CrowdStats",
    "DifficultyModel",
    "FallbackAnswers",
    "FaultEvent",
    "FaultModel",
    "Hit",
    "InferredAnswers",
    "JournalingAnswerFile",
    "LatencyModel",
    "PlatformAnswerFile",
    "PlatformSimulator",
    "RecordGroup",
    "ScriptedAnswers",
    "SimulatedWorker",
    "TruthInferenceResult",
    "UnansweredPairError",
    "WorkerEstimate",
    "WorkerPool",
    "Workforce",
    "WorkforceAnswerFile",
    "cluster_based_hits",
    "dawid_skene",
    "format_duration",
    "hit_cost_comparison",
    "load_answers",
    "monetary_cost_cents",
    "num_hits",
    "pack_hits",
    "pairs_covered_by",
    "parse_submission",
    "render_hit_html",
    "render_hit_text",
    "save_answers",
    "stable_rng",
    "stable_seed",
]
