"""Crowd latency model: what batching actually buys in wall-clock time.

The whole point of PC-Pivot and PC-Refine (Sections 4.2 and 5.4) is
*latency*: each crowd iteration means posting HITs and waiting for workers,
so total time is governed by the number of iterations, not the number of
pairs.  The paper reports iteration counts; this model translates them into
simulated wall-clock time, so the parallelization benefit can be stated in
hours rather than rounds.

The model is deliberately simple and deterministic-per-seed: a batch of
``n`` pairs is packed into HITs; the platform has ``concurrent_workers``
working in parallel; each HIT assignment takes a lognormal-ish completion
time (drawn per assignment); a batch completes when its last assignment
does; batch latencies add up (each iteration waits for the previous one).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.crowd.hits import num_hits
from repro.crowd.seeding import stable_rng


@dataclass(frozen=True)
class LatencyModel:
    """Simulated AMT timing.

    Attributes:
        pairs_per_hit: HIT packing factor.
        num_workers: Assignments per HIT (one per worker).
        concurrent_workers: Workers active on the task at any moment.
        mean_seconds_per_hit: Mean time one worker spends on one HIT.
        sigma: Lognormal shape for per-assignment variation.
        posting_overhead_seconds: Fixed cost to post a batch and collect it.
        seed: Randomness seed.
    """

    pairs_per_hit: int = 20
    num_workers: int = 3
    concurrent_workers: int = 10
    mean_seconds_per_hit: float = 90.0
    sigma: float = 0.35
    posting_overhead_seconds: float = 120.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.concurrent_workers < 1:
            raise ValueError("concurrent_workers must be >= 1")
        if self.mean_seconds_per_hit <= 0:
            raise ValueError("mean_seconds_per_hit must be > 0")

    def batch_seconds(self, num_pairs: int, batch_index: int = 0,
                      extra_assignments: int = 0) -> float:
        """Simulated completion time of one crowd iteration.

        Assignments (HITs x workers) are processed greedily by the
        ``concurrent_workers`` pool; the batch finishes when the last
        assignment does.  ``extra_assignments`` adds reposted slots —
        assignments redone after a timeout or abandonment — on top of the
        planned HITs-times-workers load.
        """
        if num_pairs < 0:
            raise ValueError(f"num_pairs must be >= 0, got {num_pairs}")
        if extra_assignments < 0:
            raise ValueError(
                f"extra_assignments must be >= 0, got {extra_assignments}"
            )
        if num_pairs == 0:
            return 0.0
        assignments = (num_hits(num_pairs, self.pairs_per_hit)
                       * self.num_workers + extra_assignments)
        rng = stable_rng(self.seed, "latency", batch_index, num_pairs)
        # mu chosen so the lognormal mean equals mean_seconds_per_hit.
        mu = math.log(self.mean_seconds_per_hit) - self.sigma ** 2 / 2.0
        # Greedy list scheduling on identical workers.
        workers = [0.0] * min(self.concurrent_workers, assignments)
        for _ in range(assignments):
            duration = rng.lognormvariate(mu, self.sigma)
            soonest = min(range(len(workers)), key=workers.__getitem__)
            workers[soonest] += duration
        return self.posting_overhead_seconds + max(workers)

    def total_seconds(self, batch_sizes: Iterable[int],
                      retries: Optional[Iterable[int]] = None) -> float:
        """Sequentially accumulated latency over a run's crowd iterations.

        Args:
            batch_sizes: Fresh pairs per iteration (``CrowdStats.batch_sizes``).
            retries: Optional reposted-assignment counts, one per batch (or
                fewer — missing entries count as zero), folding crowd-side
                failures into the wall-clock estimate.
        """
        retry_counts = list(retries) if retries is not None else []
        total = 0.0
        for index, size in enumerate(batch_sizes):
            extra = retry_counts[index] if index < len(retry_counts) else 0
            total += self.batch_seconds(size, batch_index=index,
                                        extra_assignments=extra)
        return total


class _SleepingForkSource:
    """Worker-side view of :class:`SimulatedLatencyAnswers`.

    Implements ``confidence_batch`` so a worker's local oracle delivers
    each crowd round in one call — and that call sleeps ``round_seconds``
    once, the wall-clock cost of posting the round and waiting for the
    crowd.  Answers themselves come from the wrapped source, so a
    latency-injected run resolves byte-identical confidences.
    """

    pair_deterministic = True

    def __init__(self, inner, round_seconds: float):
        self._inner = inner
        self.round_seconds = round_seconds

    @property
    def num_workers(self) -> int:
        return self._inner.num_workers

    def confidence(self, record_a: int, record_b: int) -> float:
        return self._inner.confidence(record_a, record_b)

    def confidence_batch(self, pairs):
        import time

        time.sleep(self.round_seconds)
        return {pair: self._inner.confidence(*pair) for pair in pairs}


class SimulatedLatencyAnswers:
    """Inject real wall-clock crowd latency into a simulated answer source.

    The iteration counts the paper reports translate to wall clock only
    if every crowd round actually *takes time*; this wrapper makes the
    makespan benchmarks honest.  Worker processes see
    :attr:`fork_source` — a view whose ``confidence_batch`` sleeps
    ``round_seconds`` per crowd round — so concurrently-active
    components wait out their rounds in parallel, exactly like
    concurrently-posted HIT batches.  The wrapper itself (what the
    parent's merged-round replay uses) deliberately does **not**
    implement ``confidence_batch``: replayed rounds are primed memo
    lookups and must stay free, or latency would be double-counted.

    Answers delegate to the wrapped source, so latency-injected and
    plain runs are byte-identical in everything but elapsed time.
    """

    def __init__(self, answers, round_seconds: float):
        if round_seconds < 0:
            raise ValueError(
                f"round_seconds must be >= 0, got {round_seconds}")
        self._answers = answers
        self.round_seconds = round_seconds

    @property
    def pair_deterministic(self) -> bool:
        return bool(getattr(self._answers, "pair_deterministic", False))

    @property
    def num_workers(self) -> int:
        return self._answers.num_workers

    def confidence(self, record_a: int, record_b: int) -> float:
        return self._answers.confidence(record_a, record_b)

    def prime(self, answers) -> None:
        self._answers.prime(answers)

    @property
    def fork_source(self) -> _SleepingForkSource:
        inner = getattr(self._answers, "fork_source", self._answers)
        return _SleepingForkSource(inner, self.round_seconds)


def format_duration(seconds: float) -> str:
    """Human formatting: '2h 14m', '53m', '41s'."""
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes = seconds / 60.0
    if minutes < 60:
        return f"{minutes:.0f}m"
    hours = int(minutes // 60)
    return f"{hours}h {minutes - 60 * hours:.0f}m"
