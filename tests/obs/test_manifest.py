"""Tests for repro.obs.manifest: schema, fingerprints, atomic round-trip."""

import json
from pathlib import Path

import pytest

from repro.datasets.registry import generate
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    dataset_fingerprint,
    default_manifest_path,
    git_revision,
    load_manifest,
    validate_manifest,
    write_manifest,
)


def _minimal_manifest():
    return build_manifest(
        command="test",
        config={"epsilon": 0.1},
        seeds={"pivot_seed": 7},
        stats={"pairs_issued": 10},
        metrics={"counters": {}, "gauges": {}, "histograms": {}},
        spans=[{"name": "acd", "count": 1, "total_s": 0.5}],
    )


class TestValidation:
    def test_built_manifest_is_valid(self):
        assert validate_manifest(_minimal_manifest()) == []

    def test_missing_required_key(self):
        manifest = _minimal_manifest()
        del manifest["stats"]
        errors = validate_manifest(manifest)
        assert any("stats" in error for error in errors)

    def test_wrong_type(self):
        manifest = _minimal_manifest()
        manifest["command"] = 42
        errors = validate_manifest(manifest)
        assert any("command" in error for error in errors)

    def test_bool_is_not_an_integer(self):
        manifest = _minimal_manifest()
        manifest["schema_version"] = True
        assert validate_manifest(manifest)

    def test_span_items_validated(self):
        manifest = _minimal_manifest()
        manifest["spans"] = [{"name": "acd"}]
        errors = validate_manifest(manifest)
        assert any("spans[0]" in error for error in errors)

    def test_unknown_schema_version(self):
        manifest = _minimal_manifest()
        manifest["schema_version"] = MANIFEST_SCHEMA_VERSION + 1
        assert validate_manifest(manifest)


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "run.manifest.json"
        manifest = _minimal_manifest()
        write_manifest(path, manifest)
        loaded = load_manifest(path)
        assert loaded == json.loads(json.dumps(manifest))

    def test_write_refuses_invalid(self, tmp_path):
        manifest = _minimal_manifest()
        del manifest["config"]
        with pytest.raises(ValueError):
            write_manifest(tmp_path / "bad.json", manifest)
        assert not (tmp_path / "bad.json").exists()

    def test_load_rejects_invalid(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_manifest(path)

    def test_write_is_atomic_no_temp_left(self, tmp_path):
        path = tmp_path / "run.manifest.json"
        write_manifest(path, _minimal_manifest())
        assert [p.name for p in tmp_path.iterdir()] == ["run.manifest.json"]


class TestProvenance:
    def test_git_revision_of_this_repo(self):
        revision = git_revision(Path(__file__).parent)
        # The test suite runs inside the repo's work tree.
        assert revision is None or (
            len(revision) == 40 and all(c in "0123456789abcdef"
                                        for c in revision)
        )

    def test_git_revision_outside_any_repo(self, tmp_path):
        assert git_revision(tmp_path) is None

    def test_dataset_fingerprint_is_stable_and_content_sensitive(self):
        a = dataset_fingerprint(generate("restaurant", scale=0.05, seed=1))
        b = dataset_fingerprint(generate("restaurant", scale=0.05, seed=1))
        c = dataset_fingerprint(generate("restaurant", scale=0.05, seed=2))
        assert a == b
        assert a["fingerprint"] != c["fingerprint"]
        assert a["name"] == "restaurant"
        assert a["records"] > 0


class TestDefaultManifestPath:
    def test_jsonl_suffix_replaced(self):
        assert default_manifest_path("run.trace.jsonl") == Path(
            "run.trace.manifest.json"
        )

    def test_other_suffix_appended(self):
        assert default_manifest_path("trace.log") == Path(
            "trace.log.manifest.json"
        )


class TestSchemaDocSync:
    def test_docs_copy_matches_source(self):
        docs = Path(__file__).resolve().parents[2] / "docs"
        shipped = json.loads((docs / "manifest.schema.json").read_text())
        assert shipped == json.loads(json.dumps(MANIFEST_SCHEMA))
