"""Tests for repro.obs.trace: span trees, events, sinks, null objects."""

import pytest

from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer


class TestSpanTree:
    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner-a"):
                pass
            with tracer.span("inner-b"):
                with tracer.span("leaf"):
                    pass
        assert [root.name for root in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == [
            "inner-a", "inner-b",
        ]
        assert [child.name for child in outer.children[1].children] == ["leaf"]

    def test_spans_are_timed(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            assert not span.finished
        assert span.finished
        assert span.duration_s >= 0.0

    def test_attrs_and_set_attr(self):
        tracer = Tracer()
        with tracer.span("phase", k=3) as span:
            span.set_attr("result", 7)
        assert span.attrs == {"k": 3, "result": 7}

    def test_exception_marks_error_and_closes(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        span = tracer.roots[0]
        assert span.finished
        assert span.attrs["error"] is True
        assert tracer.current is None

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("a"):
            assert tracer.current.name == "a"
            with tracer.span("b"):
                assert tracer.current.name == "b"
            assert tracer.current.name == "a"
        assert tracer.current is None

    def test_to_dict_round_trips_structure(self):
        tracer = Tracer()
        with tracer.span("outer", x=1):
            tracer.event("tick", n=2)
            with tracer.span("inner"):
                pass
        tree = tracer.roots[0].to_dict()
        assert tree["name"] == "outer"
        assert tree["attrs"] == {"x": 1}
        assert tree["events"][0]["name"] == "tick"
        assert tree["children"][0]["name"] == "inner"


class TestEvents:
    def test_event_attached_to_innermost_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                record = tracer.event("decision", choice="split")
        assert record["span"] == "inner"
        assert tracer.roots[0].children[0].events[0]["attrs"] == {
            "choice": "split"
        }

    def test_event_without_open_span(self):
        tracer = Tracer()
        record = tracer.event("orphan")
        assert record["span"] is None


class TestSink:
    def test_sink_sees_events_and_closed_spans_in_order(self):
        records = []
        tracer = Tracer(sink=records.append)
        with tracer.span("outer"):
            tracer.event("e1")
            with tracer.span("inner"):
                pass
        kinds = [(record["type"], record["name"]) for record in records]
        # The event streams immediately; spans stream on close, so inner
        # lands before outer.
        assert kinds == [
            ("event", "e1"), ("span", "inner"), ("span", "outer"),
        ]

    def test_span_record_carries_depth(self):
        records = []
        tracer = Tracer(sink=records.append)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {record["name"]: record for record in records}
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1


class TestSummaries:
    def test_rollup_counts_and_order(self):
        tracer = Tracer()
        with tracer.span("acd"):
            with tracer.span("round"):
                pass
            with tracer.span("round"):
                pass
        summaries = tracer.span_summaries()
        assert [entry["name"] for entry in summaries] == ["acd", "round"]
        assert summaries[1]["count"] == 2
        assert summaries[1]["total_s"] >= 0.0


class TestNullObjects:
    def test_null_tracer_is_shared_and_free(self):
        span_a = NULL_TRACER.span("anything", k=1)
        span_b = NULL_TRACER.span("else")
        assert span_a is span_b  # one shared object, no allocation
        with span_a as entered:
            entered.set_attr("ignored", 1)
        assert NULL_TRACER.event("nothing") is None
        assert NULL_TRACER.span_summaries() == []
        assert NULL_TRACER.roots == []

    def test_enabled_flags(self):
        assert Tracer().enabled is True
        assert NullTracer().enabled is False
