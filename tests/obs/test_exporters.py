"""Tests for repro.obs.exporters: Prometheus text format, trace summaries."""

from repro.obs.events import JsonlEventLog
from repro.obs.exporters import (
    format_trace_summary,
    summarize_trace,
    to_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("pairs_total", help="Pairs issued").inc(42)
        registry.gauge("clusters").set(7.5)
        text = to_prometheus(registry)
        assert "# HELP repro_pairs_total Pairs issued" in text
        assert "# TYPE repro_pairs_total counter" in text
        assert "repro_pairs_total 42" in text  # integral floats render as ints
        assert "repro_clusters 7.5" in text
        assert text.endswith("\n")

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("batch", bounds=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(5)
        histogram.observe(50)
        text = to_prometheus(registry)
        assert 'repro_batch_bucket{le="1"} 1' in text
        assert 'repro_batch_bucket{le="10"} 2' in text
        assert 'repro_batch_bucket{le="+Inf"} 3' in text
        assert "repro_batch_sum 55.5" in text
        assert "repro_batch_count 3" in text

    def test_name_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("weird.name-1").inc()
        assert "repro_weird_name_1 1" in to_prometheus(registry)

    def test_custom_prefix(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        assert "acme_x 1" in to_prometheus(registry, prefix="acme_")


class TestTraceSummary:
    def _write_trace(self, path):
        log = JsonlEventLog(path)
        tracer = Tracer(sink=log.emit)
        with tracer.span("acd"):
            with tracer.span("generation"):
                tracer.event("crowd.batch", pairs=10, iteration=1)
                tracer.event("crowd.batch", pairs=5, iteration=2)
            with tracer.span("refinement"):
                tracer.event("refine.round", round=1)
        log.close()

    def test_summarize(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        self._write_trace(trace)
        summary = summarize_trace(trace)
        assert summary["records"] == 6  # 3 events + 3 spans
        assert [span["name"] for span in summary["spans"]] == [
            "generation", "refinement", "acd",
        ]
        assert summary["events"] == {"crowd.batch": 2, "refine.round": 1}
        assert summary["crowd_rounds"] == [
            {"iteration": 1, "pairs": 10},
            {"iteration": 2, "pairs": 5},
        ]
        assert summary["crowd_pairs_total"] == 15

    def test_format_is_human_readable(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        self._write_trace(trace)
        text = format_trace_summary(summarize_trace(trace))
        assert "trace records: 6" in text
        assert "generation" in text
        assert "crowd rounds: 2 (15 pairs)" in text
