"""End-to-end observability tests: the trace layer against the real pipeline.

Three contracts are pinned here:

1. *Byte-identity*: a run with ``obs=None`` (the default) produces exactly
   the same ``ACDResult`` as one with a live ``ObsContext`` — observation
   never perturbs the observed run.
2. *Rollup consistency*: the metrics registry's crowd counters always
   equal the run's ``CrowdStats`` snapshot — the manifest never disagrees
   with the stats the figures are built from.
3. *Structure*: the span tree mirrors the pipeline's phases and the event
   stream covers every crowd round.
"""

import pytest

from repro.core.acd import run_acd
from repro.experiments.runner import prepare_instance, run_method
from repro.obs import ObsContext, load_manifest, read_events


@pytest.fixture(scope="module")
def instance():
    return prepare_instance("restaurant", scale=0.1, seed=3)


def _run(instance, obs=None, **kwargs):
    return run_acd(instance.record_ids, instance.candidates,
                   instance.answers, seed=kwargs.pop("seed", 11),
                   obs=obs, **kwargs)


class TestByteIdentity:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_observed_run_is_identical(self, instance, seed):
        plain = _run(instance, seed=seed)
        observed = _run(instance, obs=ObsContext(), seed=seed)
        assert observed.clustering.as_sets() == plain.clustering.as_sets()
        assert observed.stats.snapshot() == plain.stats.snapshot()
        assert observed.generation_stats == plain.generation_stats
        assert observed.refinement_stats == plain.refinement_stats

    def test_sequential_mode_identical(self, instance):
        plain = _run(instance, parallel=False)
        observed = _run(instance, obs=ObsContext(), parallel=False)
        assert observed.clustering.as_sets() == plain.clustering.as_sets()
        assert observed.stats.snapshot() == plain.stats.snapshot()

    def test_baseline_methods_identical(self, instance):
        for method in ("Crowd-Pivot", "CrowdER+", "TransM"):
            plain = run_method(method, instance, seed=5)
            observed = run_method(method, instance, seed=5, obs=ObsContext())
            assert observed.f1 == plain.f1
            assert observed.pairs_issued == plain.pairs_issued
            assert observed.iterations == plain.iterations


class TestRollupConsistency:
    def test_counters_equal_crowd_stats(self, instance):
        obs = ObsContext()
        result = _run(instance, obs=obs)
        counters = obs.metrics.as_dict()["counters"]
        snapshot = result.stats.snapshot()
        assert counters["crowd_pairs_issued_total"] == snapshot["pairs_issued"]
        assert counters["crowd_iterations_total"] == snapshot["iterations"]
        assert counters["crowd_hits_total"] == snapshot["hits"]
        assert counters["crowd_votes_total"] == snapshot["votes"]

    def test_batch_histogram_totals(self, instance):
        obs = ObsContext()
        result = _run(instance, obs=obs)
        histogram = obs.metrics.histogram("crowd_batch_pairs")
        assert histogram.count == result.stats.iterations
        assert histogram.sum == result.stats.pairs_issued

    def test_final_gauges(self, instance):
        obs = ObsContext()
        result = _run(instance, obs=obs)
        gauges = obs.metrics.as_dict()["gauges"]
        assert gauges["clusters"] == len(result.clustering)
        assert gauges["crowd_cost_cents"] == result.stats.monetary_cost_cents


class TestSpanStructure:
    def test_phase_nesting(self, instance):
        obs = ObsContext()
        _run(instance, obs=obs)
        acd = obs.tracer.roots[0]
        assert acd.name == "acd"
        phase_names = [child.name for child in acd.children]
        assert phase_names == ["generation", "refinement"]
        generation = acd.children[0]
        assert generation.children, "PC-Pivot rounds should nest here"
        assert {child.name for child in generation.children} == {
            "pivot.partial"
        }

    def test_refine_skipped_drops_phase(self, instance):
        obs = ObsContext()
        _run(instance, obs=obs, refine=False)
        acd = obs.tracer.roots[0]
        assert [child.name for child in acd.children] == ["generation"]

    def test_crowd_events_cover_every_iteration(self, instance):
        obs = ObsContext()
        result = _run(instance, obs=obs)
        batches = [event for span in obs.tracer.roots
                   for event in _all_events(span)
                   if event["name"] == "crowd.batch"]
        assert len(batches) == result.stats.iterations
        assert sum(event["attrs"]["pairs"] for event in batches) \
            == result.stats.pairs_issued


def _all_events(span):
    yield from span.events
    for child in span.children:
        yield from _all_events(child)


class TestTraceFileAndManifest:
    def test_traced_run_writes_trace_and_manifest(self, instance, tmp_path):
        trace = tmp_path / "run.trace.jsonl"
        with ObsContext.to_path(trace) as obs:
            result = _run(instance, obs=obs)
        records = read_events(trace)
        kinds = {record["type"] for record in records}
        assert kinds == {"span", "event"}
        span_names = {record["name"] for record in records
                      if record["type"] == "span"}
        assert {"acd", "generation", "refinement"} <= span_names

        manifest = load_manifest(tmp_path / "run.trace.manifest.json")
        assert manifest["command"] == "run_acd"
        assert manifest["config"]["epsilon"] == 0.1
        assert manifest["seeds"]["pivot_seed"] == 11
        assert manifest["stats"] == result.stats.snapshot()
        assert (manifest["metrics"]["counters"]["crowd_pairs_issued_total"]
                == result.stats.pairs_issued)
        assert manifest["trace_path"] == str(trace)
        span_table = {entry["name"]: entry for entry in manifest["spans"]}
        assert span_table["acd"]["count"] == 1

    def test_in_memory_obs_writes_nothing(self, instance, tmp_path):
        _run(instance, obs=ObsContext())
        assert list(tmp_path.iterdir()) == []

    def test_journaled_run_traces_identically(self, instance, tmp_path):
        plain = _run(instance)
        obs = ObsContext()
        journaled = _run(instance, obs=obs,
                         journal_path=tmp_path / "run.wal")
        assert journaled.clustering.as_sets() == plain.clustering.as_sets()
        counters = obs.metrics.as_dict()["counters"]
        assert counters["crowd_pairs_issued_total"] \
            == journaled.stats.pairs_issued
