"""Tests for repro.obs.events: the JSONL trace log and its reader."""

import pytest

from repro.obs.events import JsonlEventLog, read_events


class TestJsonlEventLog:
    def test_write_and_read_back(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlEventLog(path) as log:
            log.emit({"type": "event", "name": "a"})
            log.emit({"type": "span", "name": "b"})
        records = read_events(path)
        assert [record["name"] for record in records] == ["a", "b"]

    def test_records_written_counter(self, tmp_path):
        log = JsonlEventLog(tmp_path / "trace.jsonl")
        assert log.records_written == 0
        log.emit({"x": 1})
        log.emit({"x": 2})
        assert log.records_written == 2
        log.close()

    def test_open_truncates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlEventLog(path) as log:
            log.emit({"run": 1})
        with JsonlEventLog(path) as log:
            log.emit({"run": 2})
        assert read_events(path) == [{"run": 2}]

    def test_compact_deterministic_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlEventLog(path) as log:
            log.emit({"b": 1, "a": 2})
        assert path.read_text() == '{"a":2,"b":1}\n'


class TestReadEvents:
    def test_torn_final_line_dropped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"ok":1}\n{"torn": tr')
        assert read_events(path) == [{"ok": 1}]

    def test_mid_file_garbage_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"ok":1}\nnot json\n{"ok":2}\n')
        with pytest.raises(ValueError, match="line 2"):
            read_events(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"ok":1}\n\n{"ok":2}\n')
        assert read_events(path) == [{"ok": 1}, {"ok": 2}]
