"""Tests for repro.obs.metrics: counters, gauges, histograms, registry."""

import pytest

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_monotone(self):
        counter = Counter("n")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(4)
        gauge.set(2)
        assert gauge.value == 2.0


class TestHistogram:
    def test_default_bounds_are_valid(self):
        # Regression: the strictly-increasing validation used to be
        # inverted and rejected every valid bound sequence, including the
        # defaults.
        histogram = Histogram("h")
        assert histogram.bounds == DEFAULT_BUCKETS

    def test_rejects_non_increasing_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(3.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_cumulative_counts(self):
        histogram = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 50.0, 500.0):
            histogram.observe(value)
        # counts[i] counts observations <= bounds[i] (cumulative).
        assert histogram.counts == [2, 3, 4]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(556.5)

    def test_snapshot(self):
        histogram = Histogram("h", bounds=(2.0, 4.0))
        histogram.observe(3)
        snapshot = histogram.snapshot()
        assert snapshot == {
            "buckets": {"2.0": 0, "4.0": 1}, "sum": 3.0, "count": 1,
        }


class TestRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_cross_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_families_in_registration_order(self):
        registry = MetricsRegistry()
        registry.counter("c1")
        registry.gauge("g1")
        registry.histogram("h1")
        kinds = [(kind, name) for kind, name, _ in registry.families()]
        assert kinds == [
            ("counter", "c1"), ("gauge", "g1"), ("histogram", "h1"),
        ]

    def test_as_dict(self):
        registry = MetricsRegistry()
        registry.counter("pairs").inc(5)
        registry.gauge("clusters").set(3)
        registry.histogram("sizes", bounds=(10.0,)).observe(2)
        snapshot = registry.as_dict()
        assert snapshot["counters"] == {"pairs": 5.0}
        assert snapshot["gauges"] == {"clusters": 3.0}
        assert snapshot["histograms"]["sizes"]["count"] == 1
