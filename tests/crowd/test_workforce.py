"""Tests for repro.crowd.workforce (worker-level AMT model)."""

import pytest

from repro.crowd.workforce import (
    SimulatedWorker,
    Workforce,
    WorkforceAnswerFile,
)
from repro.crowd.worker import DifficultyModel
from repro.datasets.schema import GoldStandard


def make_gold(pairs=100):
    return GoldStandard({record: record // 2 for record in range(2 * pairs)})


class TestSimulatedWorker:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedWorker(0, reliability=1.5, approved_hits=0,
                            approval_rate=0.9)
        with pytest.raises(ValueError):
            SimulatedWorker(0, reliability=0.9, approved_hits=0,
                            approval_rate=-0.1)

    def test_difficulty_dominates(self):
        worker = SimulatedWorker(0, reliability=0.99, approved_hits=100,
                                 approval_rate=0.99)
        assert worker.error_probability(0.5) == 0.5

    def test_unreliability_dominates_easy_pairs(self):
        worker = SimulatedWorker(0, reliability=0.7, approved_hits=100,
                                 approval_rate=0.99)
        assert worker.error_probability(0.02) == pytest.approx(0.3)

    def test_error_capped(self):
        worker = SimulatedWorker(0, reliability=0.0, approved_hits=0,
                                 approval_rate=0.5)
        assert worker.error_probability(0.99) == 0.95


class TestWorkforce:
    def test_size(self):
        assert len(Workforce(size=50, seed=1)) == 50

    def test_deterministic(self):
        a = Workforce(size=30, seed=2).workers()
        b = Workforce(size=30, seed=2).workers()
        assert a == b

    def test_reliability_distribution_mean(self):
        workforce = Workforce(size=2000, reliability_alpha=14,
                              reliability_beta=2, seed=3)
        assert abs(workforce.mean_reliability() - 14 / 16) < 0.02

    def test_qualification_raises_mean_reliability(self):
        workforce = Workforce(size=500, seed=4)
        qualified = workforce.qualified(min_approval_rate=0.95)
        assert qualified.mean_reliability() > workforce.mean_reliability()
        assert len(qualified) < len(workforce)

    def test_qualification_test_predicate(self):
        workforce = Workforce(size=100, seed=5)
        elite = workforce.qualified(
            passes_test=lambda worker: worker.reliability > 0.95
        )
        assert all(worker.reliability > 0.95 for worker in elite)

    def test_impossible_qualification_rejected(self):
        workforce = Workforce(size=10, seed=6)
        with pytest.raises(ValueError):
            workforce.qualified(min_approved_hits=10 ** 9)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Workforce(size=0)


class TestWorkforceAnswerFile:
    def test_panel_size_validation(self):
        gold = make_gold(1)
        workforce = Workforce(size=5, seed=1)
        with pytest.raises(ValueError):
            WorkforceAnswerFile(gold, workforce, DifficultyModel(),
                                panel_size=6)
        with pytest.raises(ValueError):
            WorkforceAnswerFile(gold, workforce, DifficultyModel(),
                                panel_size=0)

    def test_deterministic_replay(self):
        gold = make_gold(30)
        workforce = Workforce(size=60, seed=7)
        difficulty = DifficultyModel(easy_error=0.1, seed=7)
        file_a = WorkforceAnswerFile(gold, workforce, difficulty, panel_size=3)
        file_b = WorkforceAnswerFile(gold, workforce, difficulty, panel_size=3)
        pairs = [(2 * i, 2 * i + 1) for i in range(30)]
        assert [file_a.confidence(*p) for p in pairs] == [
            file_b.confidence(*p) for p in pairs
        ]

    def test_panel_recorded(self):
        gold = make_gold(1)
        workforce = Workforce(size=10, seed=8)
        answers = WorkforceAnswerFile(gold, workforce, DifficultyModel(),
                                      panel_size=3)
        answers.confidence(0, 1)
        panel = answers.panel(0, 1)
        assert len(panel) == 3
        assert len(set(panel)) == 3  # distinct workers

    def test_qualified_workforce_reduces_errors(self):
        """The paper's stringent 5-worker setting: filtering the workforce
        lowers the majority error rate on the same pairs."""
        gold = make_gold(600)
        pairs = [(2 * i, 2 * i + 1) for i in range(600)]
        # A sloppier population so unqualified errors are visible.
        workforce = Workforce(size=400, reliability_alpha=5,
                              reliability_beta=2, seed=9)
        difficulty = DifficultyModel(easy_error=0.02, seed=9)
        everyone = WorkforceAnswerFile(gold, workforce, difficulty,
                                       panel_size=3)
        qualified = WorkforceAnswerFile(
            gold, workforce.qualified(min_approval_rate=0.9),
            difficulty, panel_size=3,
        )
        assert (qualified.majority_error_rate(pairs)
                < everyone.majority_error_rate(pairs))

    def test_pipeline_compatible(self):
        """The workforce answer file drives ACD unchanged."""
        from repro.core.acd import run_acd
        from repro.pruning.candidate import CandidateSet
        gold = make_gold(5)
        workforce = Workforce(size=20, seed=10)
        answers = WorkforceAnswerFile(gold, workforce,
                                      DifficultyModel(easy_error=0.05),
                                      panel_size=3)
        pairs = tuple((2 * i, 2 * i + 1) for i in range(5))
        candidates = CandidateSet(
            pairs=pairs, machine_scores={p: 0.8 for p in pairs},
            threshold=0.3,
        )
        result = run_acd(range(10), candidates, answers, seed=0)
        assert result.clustering.num_records == 10
