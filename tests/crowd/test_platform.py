"""Tests for repro.crowd.platform (the discrete-event platform simulator)."""

import pytest

from repro.crowd.platform import PlatformAnswerFile, PlatformSimulator
from repro.crowd.worker import DifficultyModel
from repro.crowd.workforce import Workforce
from repro.datasets.schema import GoldStandard


def make_platform(**overrides):
    defaults = dict(
        workforce=Workforce(size=30, reliability_alpha=30.0,
                            reliability_beta=1.0, seed=5),
        gold=GoldStandard({r: r // 2 for r in range(400)}),
        difficulty=DifficultyModel(easy_error=0.0),
        pairs_per_hit=5,
        assignments_per_hit=3,
        concurrent_workers=10,
        seed=9,
    )
    defaults.update(overrides)
    return PlatformSimulator(**defaults)


def dup_pairs(count):
    return [(2 * i, 2 * i + 1) for i in range(count)]


class TestConstruction:
    def test_pool_must_cover_assignments(self):
        with pytest.raises(ValueError):
            make_platform(concurrent_workers=2, assignments_per_hit=3)

    def test_pool_within_workforce(self):
        with pytest.raises(ValueError):
            make_platform(concurrent_workers=50)

    def test_invalid_packing(self):
        with pytest.raises(ValueError):
            make_platform(pairs_per_hit=0)


class TestPostBatch:
    def test_every_pair_answered(self):
        platform = make_platform()
        receipt = platform.post_batch(dup_pairs(12))
        assert set(receipt.confidences) == set(dup_pairs(12))

    def test_reliable_workers_answer_correctly(self):
        platform = make_platform()
        receipt = platform.post_batch(dup_pairs(12) + [(0, 2), (1, 3)])
        for pair in dup_pairs(12):
            assert receipt.confidences[pair] > 0.5
        assert receipt.confidences[(0, 2)] <= 0.5

    def test_assignments_per_hit_enforced(self):
        platform = make_platform()
        receipt = platform.post_batch(dup_pairs(12))
        per_hit = {}
        for assignment in receipt.assignments:
            per_hit.setdefault(assignment.hit_index, set()).add(
                assignment.worker_id
            )
        # ceil(12/5) = 3 HITs, each judged by 3 distinct workers.
        assert len(per_hit) == 3
        for workers in per_hit.values():
            assert len(workers) == 3

    def test_no_worker_repeats_a_hit(self):
        platform = make_platform()
        receipt = platform.post_batch(dup_pairs(30))
        seen = set()
        for assignment in receipt.assignments:
            key = (assignment.hit_index, assignment.worker_id)
            assert key not in seen
            seen.add(key)

    def test_clock_advances_per_batch(self):
        platform = make_platform()
        first = platform.post_batch(dup_pairs(5))
        second = platform.post_batch(dup_pairs(10))
        assert second.posted_at == first.completed_at
        assert second.completed_at > second.posted_at

    def test_cost_counts_assignments(self):
        platform = make_platform(reward_cents_per_hit=2.0)
        receipt = platform.post_batch(dup_pairs(12))  # 3 HITs x 3 workers
        assert receipt.cost_cents == 9 * 2.0
        assert platform.total_cost_cents() == receipt.cost_cents

    def test_earnings_ledger(self):
        platform = make_platform()
        platform.post_batch(dup_pairs(12))
        earnings = platform.earnings()
        assert sum(earnings.values()) == platform.total_cost_cents()
        assert all(amount > 0 for amount in earnings.values())

    def test_empty_batch(self):
        platform = make_platform()
        receipt = platform.post_batch([])
        assert receipt.confidences == {}
        assert receipt.cost_cents == 0.0

    def test_deterministic_replay(self):
        a = make_platform().post_batch(dup_pairs(20))
        b = make_platform().post_batch(dup_pairs(20))
        assert a.confidences == b.confidences
        assert a.completed_at == b.completed_at

    def test_duplicate_input_pairs_collapsed(self):
        platform = make_platform()
        receipt = platform.post_batch([(0, 1), (1, 0), (0, 1)])
        assert receipt.pairs == ((0, 1),)


class TestAuditTrail:
    def test_all_votes_attributed(self):
        platform = make_platform()
        platform.post_batch(dup_pairs(12))
        votes = platform.all_votes()
        assert set(votes) == set(dup_pairs(12))
        for pair_votes in votes.values():
            assert len(pair_votes) == 3  # one per assignment

    def test_votes_feed_truth_inference(self):
        from repro.crowd.truth_inference import dawid_skene
        platform = make_platform()
        platform.post_batch(dup_pairs(30) + [(0, 2), (3, 5), (4, 6)])
        result = dawid_skene(platform.all_votes())
        for pair in dup_pairs(30):
            assert result.posteriors[pair] > 0.5


class TestPlatformAnswerFile:
    def test_oracle_batches_become_platform_batches(self):
        from repro.crowd.oracle import CrowdOracle
        platform = make_platform()
        answers = PlatformAnswerFile(platform)
        oracle = CrowdOracle(answers)
        oracle.ask_batch(dup_pairs(8))
        oracle.ask_batch(dup_pairs(8))  # all known: no new platform batch
        oracle.ask(100, 101)
        assert len(platform.receipts) == 2

    def test_pipeline_runs_on_platform(self):
        from repro.core.acd import run_acd
        from tests.conftest import make_candidates
        platform = make_platform()
        answers = PlatformAnswerFile(platform)
        pairs = {(0, 1): 0.8, (2, 3): 0.8, (1, 2): 0.5}
        candidates = make_candidates(pairs)
        result = run_acd(range(4), candidates, answers, seed=1)
        assert result.clustering.together(0, 1)
        assert result.clustering.together(2, 3)
        assert not result.clustering.together(1, 2)
        assert platform.clock_seconds > 0
        assert platform.total_cost_cents() > 0

    def test_num_workers_reported(self):
        answers = PlatformAnswerFile(make_platform())
        assert answers.num_workers == 3
