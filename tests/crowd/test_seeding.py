"""Tests for repro.crowd.seeding."""

from repro.crowd.seeding import stable_rng, stable_seed


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed(1, "x", 2) == stable_seed(1, "x", 2)

    def test_different_parts_differ(self):
        assert stable_seed(1, "x") != stable_seed(1, "y")

    def test_separator_prevents_concatenation_collision(self):
        assert stable_seed("ab", "c") != stable_seed("a", "bc")

    def test_order_matters(self):
        assert stable_seed(1, 2) != stable_seed(2, 1)

    def test_returns_64_bit_int(self):
        value = stable_seed("anything")
        assert isinstance(value, int)
        assert 0 <= value < 2 ** 64


class TestStableRng:
    def test_same_stream(self):
        a = stable_rng("s", 1)
        b = stable_rng("s", 1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_streams(self):
        a = stable_rng("s", 1)
        b = stable_rng("s", 2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]
