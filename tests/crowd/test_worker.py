"""Tests for repro.crowd.worker."""

import pytest

from repro.crowd.worker import DifficultyModel, WorkerPool


class TestDifficultyModel:
    def test_all_easy_when_no_hard_fraction(self):
        model = DifficultyModel(easy_error=0.07, hard_fraction=0.0)
        for a in range(5):
            for b in range(a + 1, 6):
                assert model.error_probability(a, b) == 0.07

    def test_deterministic_per_pair(self):
        model = DifficultyModel(easy_error=0.05, hard_fraction=0.5, seed=1)
        assert model.error_probability(3, 9) == model.error_probability(3, 9)

    def test_symmetric_in_pair_order(self):
        model = DifficultyModel(easy_error=0.05, hard_fraction=0.5, seed=1)
        assert model.error_probability(3, 9) == model.error_probability(9, 3)

    def test_hard_pairs_exist_at_full_hard_fraction(self):
        model = DifficultyModel(
            easy_error=0.01, hard_fraction=1.0,
            hard_error_low=0.4, hard_error_high=0.6,
        )
        error = model.error_probability(0, 1)
        assert 0.4 <= error <= 0.6

    def test_hard_fraction_roughly_respected(self):
        model = DifficultyModel(
            easy_error=0.01, hard_fraction=0.3,
            hard_error_low=0.4, hard_error_high=0.6, seed=5,
        )
        hard = sum(
            1 for a in range(100) for b in range(a + 1, 100)
            if model.error_probability(a, b) >= 0.4
        )
        total = 100 * 99 // 2
        assert 0.25 < hard / total < 0.35

    def test_validation(self):
        with pytest.raises(ValueError):
            DifficultyModel(easy_error=1.5)
        with pytest.raises(ValueError):
            DifficultyModel(hard_error_low=0.6, hard_error_high=0.4)

    def test_different_seeds_reassign_hardness(self):
        kwargs = dict(easy_error=0.01, hard_fraction=0.5,
                      hard_error_low=0.4, hard_error_high=0.6)
        model_a = DifficultyModel(seed=1, **kwargs)
        model_b = DifficultyModel(seed=2, **kwargs)
        profile_a = [model_a.error_probability(a, a + 1) for a in range(50)]
        profile_b = [model_b.error_probability(a, a + 1) for a in range(50)]
        assert profile_a != profile_b


class TestWorkerPool:
    def test_votes_in_range(self):
        pool = WorkerPool(DifficultyModel(easy_error=0.3), num_workers=5)
        for a in range(10):
            votes = pool.votes(a, a + 1, is_duplicate=True)
            assert 0 <= votes <= 5

    def test_votes_deterministic(self):
        pool = WorkerPool(DifficultyModel(easy_error=0.3, seed=2), num_workers=3)
        assert pool.votes(1, 2, True) == pool.votes(1, 2, True)

    def test_confidence_is_vote_fraction(self):
        pool = WorkerPool(DifficultyModel(easy_error=0.3, seed=2), num_workers=3)
        votes = pool.votes(1, 2, True)
        assert pool.confidence(1, 2, True) == votes / 3

    def test_zero_error_perfect_answers(self):
        pool = WorkerPool(DifficultyModel(easy_error=0.0), num_workers=3)
        for a in range(20):
            assert pool.confidence(a, a + 1, True) == 1.0
            assert pool.confidence(a, a + 1, False) == 0.0

    def test_error_rate_statistics(self):
        """With i.i.d. worker error p, the vote-level error frequency over
        many pairs should be near p."""
        p = 0.2
        pool = WorkerPool(DifficultyModel(easy_error=p, seed=7), num_workers=1)
        wrong = sum(
            1 for a in range(0, 4000, 2)
            if pool.confidence(a, a + 1, True) < 0.5
        )
        assert abs(wrong / 2000 - p) < 0.03

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(DifficultyModel(), num_workers=0)
