"""Tests for repro.crowd.cluster_hits (CrowdER-style record-group HITs)."""

import pytest

from repro.crowd.cluster_hits import (
    ClusterHitPlan,
    cluster_based_hits,
    hit_cost_comparison,
    pairs_covered_by,
)
from tests.conftest import make_candidates


class TestClusterBasedHits:
    def test_single_pair_one_group(self):
        candidates = make_candidates({(0, 1): 0.8})
        plan = cluster_based_hits(candidates, records_per_hit=5)
        assert plan.num_hits == 1
        assert plan.covered_pairs == ((0, 1),)
        assert plan.uncovered_pairs == ()

    def test_connected_pairs_share_a_group(self):
        # A 4-clique of candidates fits in one group of 4+.
        scores = {(a, b): 0.8 for a in range(4) for b in range(a + 1, 4)}
        plan = cluster_based_hits(make_candidates(scores), records_per_hit=5)
        assert plan.num_hits == 1
        assert plan.coverage() == 1.0

    def test_capacity_respected(self):
        scores = {(0, i): 0.8 for i in range(1, 8)}  # star around record 0
        plan = cluster_based_hits(make_candidates(scores), records_per_hit=3,
                                  max_hits_per_record=10)
        for group in plan.groups:
            assert len(group) <= 3

    def test_star_needs_multiple_groups(self):
        scores = {(0, i): 0.8 for i in range(1, 8)}
        plan = cluster_based_hits(make_candidates(scores), records_per_hit=3,
                                  max_hits_per_record=10)
        assert plan.num_hits >= 3  # 7 spokes, 2 fit per group with the hub
        assert plan.coverage() == 1.0

    def test_max_hits_per_record_limits_hub_reuse(self):
        scores = {(0, i): 0.8 for i in range(1, 20)}
        plan = cluster_based_hits(make_candidates(scores), records_per_hit=3,
                                  max_hits_per_record=2)
        hub_appearances = sum(
            1 for group in plan.groups if 0 in group.records
        )
        assert hub_appearances <= 2
        assert len(plan.uncovered_pairs) > 0  # the cap leaves spokes uncovered

    def test_every_candidate_pair_accounted_for(self):
        scores = {(a, b): 0.5 + 0.01 * a
                  for a in range(10) for b in range(a + 1, 10)
                  if (a + b) % 3 != 0}
        candidates = make_candidates(scores)
        plan = cluster_based_hits(candidates, records_per_hit=4)
        assert set(plan.covered_pairs) | set(plan.uncovered_pairs) == set(
            candidates.pairs
        )
        assert not set(plan.covered_pairs) & set(plan.uncovered_pairs)

    def test_covered_pairs_really_share_groups(self):
        scores = {(a, b): 0.6 for a in range(6) for b in range(a + 1, 6)
                  if b - a <= 2}
        candidates = make_candidates(scores)
        plan = cluster_based_hits(candidates, records_per_hit=4)
        in_group = set()
        for group in plan.groups:
            in_group.update(
                (x, y) for i, x in enumerate(group.records)
                for y in group.records[i + 1:]
            )
        for pair in plan.covered_pairs:
            assert pair in in_group

    def test_validation(self):
        candidates = make_candidates({})
        with pytest.raises(ValueError):
            cluster_based_hits(candidates, records_per_hit=1)
        with pytest.raises(ValueError):
            cluster_based_hits(candidates, max_hits_per_record=0)

    def test_empty_candidates(self):
        plan = cluster_based_hits(make_candidates({}))
        assert plan.num_hits == 0
        assert plan.coverage() == 1.0


class TestPairsCoveredBy:
    def test_in_group_candidate_pairs_only(self):
        candidates = make_candidates({(0, 1): 0.8, (1, 2): 0.7})
        plan = cluster_based_hits(candidates, records_per_hit=4)
        group = plan.groups[0]
        covered = pairs_covered_by(group, candidates)
        for pair in covered:
            assert pair in candidates


class TestHitCostComparison:
    def test_reading_effort_cheaper_on_dense_graph(self, tiny_paper):
        """CrowdER's win is worker reading effort: settling the same pairs
        while displaying far fewer records."""
        comparison = hit_cost_comparison(tiny_paper.candidates,
                                         records_per_hit=10,
                                         pairs_per_hit=20)
        assert (comparison["cluster_based_records_shown"]
                < 0.7 * comparison["pair_based_records_shown"])
        assert 0.0 <= comparison["coverage"] <= 1.0

    def test_full_coverage_with_generous_budget(self, tiny_paper):
        comparison = hit_cost_comparison(tiny_paper.candidates,
                                         records_per_hit=15,
                                         max_hits_per_record=10)
        assert comparison["coverage"] > 0.95

    def test_keys_present(self):
        comparison = hit_cost_comparison(make_candidates({(0, 1): 0.8}))
        assert set(comparison) == {
            "pair_based_hits", "cluster_based_hits", "groups",
            "fallback_hits", "pair_based_records_shown",
            "cluster_based_records_shown", "coverage",
        }
