"""Fault injection, degradation, and crash-safe persistence.

Covers the robustness surface end to end: the declarative
:class:`FaultModel`, worker personas, the platform's retry/requeue event
loop under injected failures, early-quorum degradation, the
machine-score fallback, the write-ahead :class:`AnswerJournal`, and the
resume path through :class:`JournalingAnswerFile`.
"""

import json

import pytest

from repro.crowd.cache import FallbackAnswers, ScriptedAnswers
from repro.crowd.faults import (
    ABANDONED,
    TIMEOUT,
    FaultModel,
    UnansweredPairError,
)
from repro.crowd.oracle import CrowdOracle
from repro.crowd.persistence import (
    AnswerJournal,
    JournalingAnswerFile,
    load_answers,
)
from repro.crowd.platform import PlatformAnswerFile, PlatformSimulator
from repro.crowd.stats import CrowdStats
from repro.crowd.worker import DifficultyModel
from repro.crowd.workforce import (
    ADVERSARIAL,
    HONEST,
    SPAMMER,
    SimulatedWorker,
    Workforce,
)
from repro.datasets.schema import GoldStandard


def _gold(num_records=12, per_entity=2):
    return GoldStandard({
        record: record // per_entity for record in range(num_records)
    })


def _pairs(num_records=12, per_entity=2):
    gold = _gold(num_records, per_entity)
    return sorted(
        (a, b)
        for a in range(num_records) for b in range(a + 1, num_records)
        if gold.is_duplicate(a, b) or (a + b) % 3 == 0
    )


def _platform(seed=0, fault_model=None, workforce=None, **kwargs):
    workforce = workforce if workforce is not None else Workforce(
        size=30, seed=seed
    )
    defaults = dict(pairs_per_hit=4, assignments_per_hit=3,
                    concurrent_workers=8, seed=seed)
    defaults.update(kwargs)
    return PlatformSimulator(
        workforce=workforce,
        gold=_gold(),
        difficulty=DifficultyModel(easy_error=0.1),
        fault_model=fault_model,
        **defaults,
    )


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(abandonment_probability=1.5)
        with pytest.raises(ValueError):
            FaultModel(timeout_seconds=0)
        with pytest.raises(ValueError):
            FaultModel(spam_fraction=0.6, adversarial_fraction=0.6)
        with pytest.raises(ValueError):
            FaultModel(max_reposts=-1)
        with pytest.raises(ValueError):
            FaultModel(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            FaultModel(outages=((10.0, 5.0),))

    def test_null_detection(self):
        assert FaultModel.none().is_null
        assert not FaultModel.default().is_null
        assert not FaultModel(abandonment_probability=0.01).is_null

    def test_backoff_is_exponential_and_capped(self):
        fault = FaultModel(backoff_base_seconds=10.0, backoff_multiplier=3.0,
                           backoff_cap_seconds=100.0)
        assert fault.backoff_seconds(1) == 10.0
        assert fault.backoff_seconds(2) == 30.0
        assert fault.backoff_seconds(3) == 90.0
        assert fault.backoff_seconds(4) == 100.0  # capped
        with pytest.raises(ValueError):
            fault.backoff_seconds(0)

    def test_outages_sorted_and_cascaded(self):
        fault = FaultModel(outages=((50.0, 60.0), (10.0, 20.0)))
        assert fault.outages == ((10.0, 20.0), (50.0, 60.0))
        assert fault.in_outage(15.0)
        assert not fault.in_outage(20.0)  # half-open window
        assert fault.delay_past_outage(15.0) == 20.0
        assert fault.delay_past_outage(5.0) == 5.0
        # Windows that chain: landing in one can land you in the next.
        chained = FaultModel(outages=((0.0, 10.0), (10.0, 30.0)))
        assert chained.delay_past_outage(5.0) == 30.0


class TestPersonas:
    def test_persona_fractions_materialize(self):
        workforce = Workforce(size=50, seed=1, spam_fraction=0.2,
                              adversarial_fraction=0.1)
        counts = workforce.persona_counts()
        assert counts[SPAMMER] == 10
        assert counts[ADVERSARIAL] == 5
        assert counts[HONEST] == 35

    def test_personas_do_not_disturb_honest_population(self):
        plain = Workforce(size=40, seed=7)
        flagged = Workforce(size=40, seed=7, spam_fraction=0.25)
        for before, after in zip(plain, flagged):
            assert before.worker_id == after.worker_id
            assert before.reliability == after.reliability

    def test_zero_fractions_are_identical_population(self):
        assert (Workforce(size=40, seed=7).workers()
                == Workforce(size=40, seed=7, spam_fraction=0.0).workers())

    def test_persona_error_probabilities(self):
        spammer = SimulatedWorker(0, 0.99, 100, 1.0, persona=SPAMMER)
        adversary = SimulatedWorker(1, 0.99, 100, 1.0, persona=ADVERSARIAL)
        honest = SimulatedWorker(2, 0.9, 100, 1.0)
        assert spammer.error_probability(0.05) == 0.5
        assert adversary.error_probability(0.05) == 0.95
        assert honest.error_probability(0.05) == pytest.approx(0.1)

    def test_unknown_persona_rejected(self):
        with pytest.raises(ValueError):
            SimulatedWorker(0, 0.9, 10, 1.0, persona="robot")

    def test_qualified_view_keeps_fractions(self):
        workforce = Workforce(size=50, seed=1, spam_fraction=0.2)
        view = workforce.qualified(min_approval_rate=0.6)
        assert view.spam_fraction == 0.2


class TestPlatformFaultInjection:
    def test_fault_free_replay_is_deterministic(self):
        fault = FaultModel(abandonment_probability=0.3, max_reposts=5)
        receipts = []
        for _ in range(2):
            platform = _platform(seed=5, fault_model=fault)
            receipts.append(platform.post_batch(_pairs()))
        first, second = receipts
        assert first.confidences == second.confidences
        assert first.fault_events == second.fault_events
        assert first.reposts == second.reposts

    def test_abandonment_produces_fault_events_and_retries(self):
        fault = FaultModel(abandonment_probability=0.5, max_reposts=10,
                           backoff_base_seconds=1.0)
        platform = _platform(seed=2, fault_model=fault)
        receipt = platform.post_batch(_pairs())
        assert receipt.reposts > 0
        assert any(event.kind == ABANDONED for event in receipt.fault_events)
        # Every pair still got a full verdict: the retries recovered it.
        assert set(receipt.confidences) == set(receipt.pairs)

    def test_timeouts_fire_on_slow_assignments(self):
        fault = FaultModel(timeout_seconds=30.0, max_reposts=50,
                           backoff_base_seconds=1.0)
        platform = _platform(seed=3, fault_model=fault,
                             mean_seconds_per_hit=40.0)
        receipt = platform.post_batch(_pairs())
        assert any(event.kind == TIMEOUT for event in receipt.fault_events)
        for event in receipt.fault_events:
            if event.kind == TIMEOUT:
                break
        assert event.at > receipt.posted_at

    def test_outage_delays_the_batch(self):
        quiet = _platform(seed=4, fault_model=None)
        baseline = quiet.post_batch(_pairs()).completed_at
        fault = FaultModel(outages=((0.0, 500.0),))
        platform = _platform(seed=4, fault_model=fault)
        receipt = platform.post_batch(_pairs())
        # Nothing can start before the outage lifts.
        assert all(a.started_at >= 500.0 for a in receipt.assignments)
        assert receipt.completed_at >= baseline + 500.0

    def test_budget_exhaustion_degrades_pairs(self):
        fault = FaultModel(abandonment_probability=1.0, max_reposts=1,
                           backoff_base_seconds=1.0)
        platform = _platform(seed=6, fault_model=fault)
        receipt = platform.post_batch(_pairs())
        assert set(receipt.unanswered_pairs) == set(receipt.pairs)
        assert set(receipt.degraded_pairs) == set(receipt.pairs)
        assert receipt.confidences == {}

    def test_early_quorum_never_flips_a_verdict(self):
        pairs = _pairs()
        full = _platform(seed=8, fault_model=None)
        full_receipt = full.post_batch(pairs)
        fault = FaultModel(early_quorum=True,
                           abandonment_probability=1e-12)
        quorum = _platform(seed=8, fault_model=fault)
        quorum_receipt = quorum.post_batch(pairs)
        assert quorum_receipt.quorum_stops > 0
        for pair in pairs:
            assert ((full_receipt.confidences[pair] > 0.5)
                    == (quorum_receipt.confidences[pair] > 0.5)), pair

    def test_timeline_interleaves_faults(self):
        fault = FaultModel(abandonment_probability=0.5, max_reposts=10,
                           backoff_base_seconds=1.0)
        platform = _platform(seed=2, fault_model=fault)
        receipt = platform.post_batch(_pairs())
        timeline = receipt.timeline()
        times = [time for time, _ in timeline]
        assert times == sorted(times)
        assert any("requeued" in line for _, line in timeline)


class TestDegradationFallback:
    def _exhausted_platform(self, fallback=None):
        fault = FaultModel(abandonment_probability=1.0, max_reposts=0,
                           backoff_base_seconds=1.0)
        return PlatformAnswerFile(_platform(seed=9, fault_model=fault),
                                  fallback=fallback)

    def test_unanswered_without_fallback_raises(self):
        answers = self._exhausted_platform()
        with pytest.raises(UnansweredPairError) as excinfo:
            answers.confidence(0, 1)
        assert excinfo.value.pair == (0, 1)

    def test_fallback_serves_machine_score_flagged_degraded(self):
        answers = self._exhausted_platform(fallback={(0, 1): 0.7})
        assert answers.confidence(0, 1) == 0.7
        assert (0, 1) in answers.degraded_pairs()
        counters = answers.drain_fault_counters()
        assert counters["degraded_pairs"] >= 1

    def test_fallback_outside_unit_interval_rejected(self):
        answers = self._exhausted_platform(fallback=lambda pair: 1.7)
        with pytest.raises(ValueError):
            answers.confidence(0, 1)

    def test_fallback_answers_wrapper(self):
        primary = ScriptedAnswers({(0, 1): 0.9})
        answers = FallbackAnswers(primary, {(2, 3): 0.2})
        assert answers.confidence(0, 1) == 0.9
        assert answers.confidence(2, 3) == 0.2
        assert answers.degraded_pairs() == {(2, 3)}

    def test_oracle_folds_fault_counters_into_stats(self):
        fault = FaultModel(abandonment_probability=0.5, max_reposts=10,
                           backoff_base_seconds=1.0)
        answers = PlatformAnswerFile(_platform(seed=2, fault_model=fault))
        stats = CrowdStats(num_workers=answers.num_workers)
        oracle = CrowdOracle(answers, stats=stats)
        oracle.ask_batch(_pairs())
        assert stats.retries > 0
        assert stats.abandonments > 0
        snapshot = stats.snapshot()
        assert snapshot["retries"] == stats.retries
        assert snapshot["abandonments"] == stats.abandonments


class TestAnswerJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.wal"
        journal = AnswerJournal(path, num_workers=3)
        journal.append_batch({(0, 1): 0.8, (2, 3): 0.2},
                             degraded=[(2, 3)],
                             faults={"retries": 2, "timeouts": 0})
        journal.append_batch({(4, 5): 1.0})
        journal.close()
        replayed = AnswerJournal(path)
        assert replayed.num_workers == 3
        assert replayed.num_batches == 2
        assert replayed.answers() == {(0, 1): 0.8, (2, 3): 0.2, (4, 5): 1.0}
        assert replayed.degraded_pairs() == {(2, 3)}
        assert replayed.batch_faults(0) == {"retries": 2}  # zeros dropped
        assert replayed.batch_faults(1) == {}
        replayed.close()

    def test_duplicate_pair_rejected_on_append(self, tmp_path):
        journal = AnswerJournal(tmp_path / "run.wal", num_workers=3)
        journal.append_batch({(0, 1): 0.8})
        with pytest.raises(ValueError):
            journal.append_batch({(1, 0): 0.9})
        journal.close()

    def test_bad_confidence_rejected(self, tmp_path):
        journal = AnswerJournal(tmp_path / "run.wal", num_workers=3)
        with pytest.raises(ValueError):
            journal.append_batch({(0, 1): 1.8})
        journal.close()

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "run.wal"
        journal = AnswerJournal(path, num_workers=3)
        journal.append_batch({(0, 1): 0.8})
        journal.append_batch({(2, 3): 0.4})
        journal.close()
        # Simulate a crash mid-write: chop the final record in half.
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) - 9])
        recovered = AnswerJournal(path)
        assert recovered.num_batches == 1
        assert recovered.answers() == {(0, 1): 0.8}
        # The torn bytes are gone from disk; appends continue cleanly.
        recovered.append_batch({(2, 3): 0.4})
        recovered.close()
        final = AnswerJournal(path)
        assert final.answers() == {(0, 1): 0.8, (2, 3): 0.4}
        final.close()

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "run.wal"
        journal = AnswerJournal(path, num_workers=3)
        journal.append_batch({(0, 1): 0.8})
        journal.append_batch({(2, 3): 0.4})
        journal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"answers": [[0, 1,\n'
        path.write_bytes(b"".join(lines))
        with pytest.raises(ValueError):
            AnswerJournal(path)

    def test_wrong_header_rejected(self, tmp_path):
        path = tmp_path / "notajournal.wal"
        path.write_text(json.dumps({"version": 1, "answers": []}) + "\n")
        with pytest.raises(ValueError):
            AnswerJournal(path)

    def test_worker_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "run.wal"
        AnswerJournal(path, num_workers=3).close()
        with pytest.raises(ValueError):
            AnswerJournal(path, num_workers=5)

    def test_checkpoint_is_a_loadable_answer_file(self, tmp_path):
        journal = AnswerJournal(tmp_path / "run.wal", num_workers=3)
        journal.append_batch({(0, 1): 0.8, (2, 3): 0.2})
        snapshot = tmp_path / "checkpoint.json"
        assert journal.checkpoint(snapshot) == 2
        journal.close()
        answers = load_answers(snapshot)
        assert answers.confidence(0, 1) == 0.8
        assert answers.num_workers == 3


class _ExplodingSource:
    """An answer source that must never be consulted."""

    num_workers = 3

    def confidence(self, a, b):
        raise AssertionError("source consulted for a journaled pair")

    def confidence_batch(self, pairs):
        raise AssertionError("source consulted for journaled pairs")


class TestJournalingAnswerFile:
    def test_journaled_pairs_never_touch_the_source(self, tmp_path):
        path = tmp_path / "run.wal"
        journal = AnswerJournal(path, num_workers=3)
        journal.append_batch({(0, 1): 0.8, (2, 3): 0.2})
        journal.close()
        answers = JournalingAnswerFile(_ExplodingSource(), path)
        assert answers.resumed_answers == 2
        assert answers.confidence(0, 1) == 0.8
        assert answers.confidence_batch([(2, 3)]) == {(2, 3): 0.2}
        answers.close()

    def test_fresh_batches_are_journaled_durably(self, tmp_path):
        path = tmp_path / "run.wal"
        source = ScriptedAnswers({(0, 1): 0.9, (2, 3): 0.1}, num_workers=3)
        answers = JournalingAnswerFile(source, path)
        answers.confidence_batch([(0, 1), (2, 3)])
        answers.close()
        replayed = AnswerJournal(path)
        assert replayed.answers() == {(0, 1): 0.9, (2, 3): 0.1}
        replayed.close()

    def test_platform_batch_counter_fast_forwards(self, tmp_path):
        fault = FaultModel(abandonment_probability=0.4, max_reposts=8,
                           backoff_base_seconds=1.0)
        pairs = _pairs()
        first, second = pairs[:len(pairs) // 2], pairs[len(pairs) // 2:]

        reference = PlatformAnswerFile(_platform(seed=12, fault_model=fault))
        expected = {}
        expected.update(reference.confidence_batch(first))
        expected.update(reference.confidence_batch(second))

        path = tmp_path / "run.wal"
        killed = JournalingAnswerFile(
            PlatformAnswerFile(_platform(seed=12, fault_model=fault)), path)
        killed.confidence_batch(first)
        killed.close()  # the crash

        resumed = JournalingAnswerFile(
            PlatformAnswerFile(_platform(seed=12, fault_model=fault)), path)
        got = dict(resumed.confidence_batch(first))
        got.update(resumed.confidence_batch(second))
        resumed.close()
        assert got == expected

    def test_replayed_batches_resurface_fault_counters(self, tmp_path):
        path = tmp_path / "run.wal"
        journal = AnswerJournal(path, num_workers=3)
        journal.append_batch({(0, 1): 0.8}, faults={"retries": 3})
        journal.close()
        answers = JournalingAnswerFile(_ExplodingSource(), path)
        answers.confidence_batch([(0, 1)])
        assert answers.drain_fault_counters() == {"retries": 3}
        # Drained once; a second drain is empty.
        assert answers.drain_fault_counters() == {}
        answers.close()

    def test_worker_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "run.wal"
        AnswerJournal(path, num_workers=5).close()
        with pytest.raises(ValueError):
            JournalingAnswerFile(_ExplodingSource(), path)
