"""Tests for the batch-aware answer-source interface of CrowdOracle.

A live crowd client wants whole batches (to post one HIT group), not
per-pair callbacks; the oracle must use ``confidence_batch`` when the
answer source provides it.
"""

import pytest

from repro.crowd.oracle import CrowdOracle


class BatchClient:
    """A fake live crowd client that only supports batched resolution."""

    num_workers = 3

    def __init__(self, confidences):
        self._confidences = confidences
        self.batch_calls = []

    def confidence_batch(self, pairs):
        self.batch_calls.append(list(pairs))
        return {pair: self._confidences[pair] for pair in pairs}

    def confidence(self, a, b):  # pragma: no cover - must not be used
        raise AssertionError("per-pair path should not be taken")


class TestBatchInterface:
    def test_batch_resolver_preferred(self):
        client = BatchClient({(0, 1): 0.9, (2, 3): 0.1})
        oracle = CrowdOracle(client)
        answers = oracle.ask_batch([(0, 1), (2, 3)])
        assert answers == {(0, 1): 0.9, (2, 3): 0.1}
        assert len(client.batch_calls) == 1
        assert client.batch_calls[0] == [(0, 1), (2, 3)]

    def test_known_pairs_not_resent(self):
        client = BatchClient({(0, 1): 0.9, (2, 3): 0.1})
        oracle = CrowdOracle(client)
        oracle.ask_batch([(0, 1)])
        oracle.ask_batch([(0, 1), (2, 3)])
        # Second call only ships the fresh pair to the client.
        assert client.batch_calls[1] == [(2, 3)]

    def test_empty_fresh_set_means_no_client_call(self):
        client = BatchClient({(0, 1): 0.9})
        oracle = CrowdOracle(client)
        oracle.ask_batch([(0, 1)])
        oracle.ask_batch([(0, 1)])
        assert len(client.batch_calls) == 1

    def test_whole_pipeline_through_batch_client(self):
        """ACD runs end to end over a batch-only client."""
        from repro.core.acd import run_acd
        from tests.conftest import make_candidates

        confidences = {(0, 1): 1.0, (1, 2): 0.0, (0, 2): 0.0, (3, 4): 1.0}
        client = BatchClient(confidences)
        candidates = make_candidates(
            {pair: 0.7 for pair in confidences}
        )
        result = run_acd(range(5), candidates, client, seed=2)
        assert result.clustering.together(0, 1)
        assert result.clustering.together(3, 4)
        assert not result.clustering.together(0, 2)
        assert client.batch_calls  # the batched path was exercised
