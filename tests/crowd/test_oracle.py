"""Tests for repro.crowd.oracle."""

import pytest

from repro.crowd.cache import ScriptedAnswers
from repro.crowd.oracle import CrowdOracle


@pytest.fixture
def oracle():
    return CrowdOracle(ScriptedAnswers({
        (0, 1): 0.9, (1, 2): 0.1, (2, 3): 0.7, (3, 4): 0.3,
    }, num_workers=3))


class TestAsk:
    def test_returns_confidence(self, oracle):
        assert oracle.ask(0, 1) == 0.9

    def test_single_ask_counts_one_pair_one_iteration(self, oracle):
        oracle.ask(0, 1)
        assert oracle.stats.pairs_issued == 1
        assert oracle.stats.iterations == 1

    def test_repeat_ask_is_free(self, oracle):
        oracle.ask(0, 1)
        oracle.ask(1, 0)
        assert oracle.stats.pairs_issued == 1
        assert oracle.stats.iterations == 1


class TestAskBatch:
    def test_batch_counts_one_iteration(self, oracle):
        answers = oracle.ask_batch([(0, 1), (1, 2), (2, 3)])
        assert answers == {(0, 1): 0.9, (1, 2): 0.1, (2, 3): 0.7}
        assert oracle.stats.pairs_issued == 3
        assert oracle.stats.iterations == 1

    def test_batch_of_known_pairs_is_free(self, oracle):
        oracle.ask_batch([(0, 1), (1, 2)])
        oracle.ask_batch([(1, 0), (2, 1)])
        assert oracle.stats.iterations == 1
        assert oracle.stats.pairs_issued == 2

    def test_mixed_batch_charges_only_new(self, oracle):
        oracle.ask_batch([(0, 1)])
        answers = oracle.ask_batch([(0, 1), (2, 3)])
        assert set(answers) == {(0, 1), (2, 3)}
        assert oracle.stats.pairs_issued == 2
        assert oracle.stats.iterations == 2

    def test_duplicate_pairs_in_one_batch_counted_once(self, oracle):
        oracle.ask_batch([(0, 1), (1, 0)])
        assert oracle.stats.pairs_issued == 1

    def test_empty_batch_is_noop(self, oracle):
        assert oracle.ask_batch([]) == {}
        assert oracle.stats.iterations == 0


class TestKnownSet:
    def test_knows_after_ask(self, oracle):
        assert not oracle.knows(0, 1)
        oracle.ask(0, 1)
        assert oracle.knows(0, 1)
        assert oracle.knows(1, 0)

    def test_known_confidence_never_crowdsources(self, oracle):
        assert oracle.known_confidence(0, 1) is None
        assert oracle.stats.pairs_issued == 0
        oracle.ask(0, 1)
        assert oracle.known_confidence(0, 1) == 0.9

    def test_known_pairs_is_copy(self, oracle):
        oracle.ask(0, 1)
        known = oracle.known_pairs()
        known[(9, 10)] = 0.5
        assert not oracle.knows(9, 10)

    def test_seed_known_is_free(self, oracle):
        oracle.seed_known({(3, 4): 0.3})
        assert oracle.knows(3, 4)
        assert oracle.stats.pairs_issued == 0
        # Re-asking the seeded pair stays free.
        oracle.ask(3, 4)
        assert oracle.stats.pairs_issued == 0

    def test_num_workers_passthrough(self, oracle):
        assert oracle.num_workers == 3
