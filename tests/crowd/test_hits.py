"""Tests for repro.crowd.hits."""

import pytest

from repro.crowd.hits import monetary_cost_cents, num_hits, pack_hits


class TestPackHits:
    def test_even_split(self):
        hits = pack_hits([(0, 1), (1, 2), (2, 3), (3, 4)], pairs_per_hit=2)
        assert [len(hit) for hit in hits] == [2, 2]

    def test_remainder_hit(self):
        hits = pack_hits([(0, 1), (1, 2), (2, 3)], pairs_per_hit=2)
        assert [len(hit) for hit in hits] == [2, 1]

    def test_preserves_order(self):
        pairs = [(0, 1), (1, 2), (2, 3)]
        hits = pack_hits(pairs, pairs_per_hit=2)
        assert list(hits[0].pairs) + list(hits[1].pairs) == pairs

    def test_hit_ids_sequential(self):
        hits = pack_hits([(0, 1)] , pairs_per_hit=1, start_id=5)
        assert hits[0].hit_id == 5

    def test_empty_input(self):
        assert pack_hits([], pairs_per_hit=10) == []

    def test_invalid_hit_size(self):
        with pytest.raises(ValueError):
            pack_hits([(0, 1)], pairs_per_hit=0)


class TestNumHits:
    def test_rounds_up(self):
        assert num_hits(21, pairs_per_hit=20) == 2

    def test_zero_pairs(self):
        assert num_hits(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            num_hits(-1)


class TestMonetaryCost:
    def test_matches_paper_setting(self):
        # 100 pairs at 20/HIT, 3 workers, 2c -> 5 HITs x 6c = 30c.
        assert monetary_cost_cents(100) == 30.0

    def test_five_worker_setting(self):
        assert monetary_cost_cents(
            100, pairs_per_hit=10, num_workers=5
        ) == 100.0
