"""Tests for repro.crowd.render (HIT rendering and parsing)."""

import pytest

from repro.crowd.hits import Hit
from repro.crowd.render import (
    QUESTION,
    parse_submission,
    render_hit_html,
    render_hit_text,
)
from repro.datasets.schema import Record


@pytest.fixture
def records():
    return {
        0: Record(0, "chevrolet"),
        1: Record(1, "chevy"),
        2: Record(2, 'cafe <le "monde">'),
    }


@pytest.fixture
def hit():
    return Hit(hit_id=7, pairs=((0, 1), (1, 2)))


class TestTextRendering:
    def test_contains_question_and_texts(self, hit, records):
        text = render_hit_text(hit, records)
        assert QUESTION in text
        assert "chevrolet" in text and "chevy" in text

    def test_numbered_questions(self, hit, records):
        text = render_hit_text(hit, records)
        assert "Q1:" in text and "Q2:" in text

    def test_hit_id_shown(self, hit, records):
        assert "HIT #7" in render_hit_text(hit, records)


class TestHtmlRendering:
    def test_escapes_html(self, hit, records):
        html_text = render_hit_html(hit, records)
        assert '<le "monde">' not in html_text  # raw text never embedded
        assert "&lt;le &quot;monde&quot;&gt;" in html_text

    def test_radio_groups_per_pair(self, hit, records):
        html_text = render_hit_html(hit, records)
        assert 'name="q0_1"' in html_text
        assert 'name="q1_2"' in html_text
        assert html_text.count('value="same"') == 2

    def test_form_wrapper(self, hit, records):
        html_text = render_hit_html(hit, records)
        assert html_text.startswith("<!DOCTYPE html>")
        assert "<form" in html_text and "</form>" in html_text


class TestParseSubmission:
    def test_parses_votes(self):
        votes = parse_submission({"q0_1": "same", "q1_2": "different"})
        assert votes == {(0, 1): True, (1, 2): False}

    def test_canonicalizes_pair_order(self):
        assert parse_submission({"q5_2": "same"}) == {(2, 5): True}

    def test_ignores_non_question_fields(self):
        assert parse_submission({"submit": "1", "q0_1": "same"}) == {
            (0, 1): True
        }

    def test_malformed_name_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_submission({"qxy": "same"})

    def test_invalid_vote_rejected(self):
        with pytest.raises(ValueError, match="must be 'same'"):
            parse_submission({"q0_1": "maybe"})

    def test_round_trip_with_rendered_form(self, hit, records):
        """Field names embedded in the HTML parse back to the HIT's pairs."""
        html_text = render_hit_html(hit, records)
        form = {}
        for a, b in hit.pairs:
            name = f"q{a}_{b}"
            assert f'name="{name}"' in html_text
            form[name] = "same"
        votes = parse_submission(form)
        assert set(votes) == {(0, 1), (1, 2)}
