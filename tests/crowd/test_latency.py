"""Tests for repro.crowd.latency."""

import pytest

from repro.crowd.latency import LatencyModel, format_duration


class TestLatencyModel:
    def test_zero_pairs_is_free(self):
        assert LatencyModel().batch_seconds(0) == 0.0

    def test_deterministic(self):
        model = LatencyModel(seed=4)
        assert model.batch_seconds(100, 1) == model.batch_seconds(100, 1)

    def test_batch_index_varies_draws(self):
        model = LatencyModel(seed=4)
        assert model.batch_seconds(100, 0) != model.batch_seconds(100, 1)

    def test_bigger_batches_take_longer(self):
        model = LatencyModel(seed=1, concurrent_workers=5)
        small = model.batch_seconds(20, 0)
        large = model.batch_seconds(2000, 0)
        assert large > small

    def test_more_concurrency_is_faster(self):
        slow = LatencyModel(seed=2, concurrent_workers=2)
        fast = LatencyModel(seed=2, concurrent_workers=50)
        assert fast.batch_seconds(1000, 0) < slow.batch_seconds(1000, 0)

    def test_includes_posting_overhead(self):
        model = LatencyModel(seed=3, posting_overhead_seconds=500.0)
        assert model.batch_seconds(1, 0) > 500.0

    def test_total_accumulates_batches(self):
        model = LatencyModel(seed=5)
        individual = sum(model.batch_seconds(size, index)
                         for index, size in enumerate([50, 80, 20]))
        assert model.total_seconds([50, 80, 20]) == pytest.approx(individual)

    def test_negative_pairs_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel().batch_seconds(-1)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            LatencyModel(concurrent_workers=0)
        with pytest.raises(ValueError):
            LatencyModel(mean_seconds_per_hit=0.0)

    def test_fewer_iterations_means_less_wall_clock(self):
        """The batching motivation quantified: the same pairs in 3 batches
        finish far sooner than in 300 one-pair batches."""
        model = LatencyModel(seed=6, concurrent_workers=20)
        batched = model.total_seconds([100, 100, 100])
        sequential = model.total_seconds([1] * 300)
        assert batched < sequential / 5


class TestFormatDuration:
    def test_seconds(self):
        assert format_duration(41) == "41s"

    def test_minutes(self):
        assert format_duration(53 * 60) == "53m"

    def test_hours(self):
        assert format_duration(2 * 3600 + 14 * 60) == "2h 14m"
