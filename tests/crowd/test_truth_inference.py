"""Tests for repro.crowd.truth_inference (Dawid-Skene EM)."""

import pytest

from repro.crowd.truth_inference import (
    InferredAnswers,
    TruthInferenceResult,
    dawid_skene,
)
from repro.crowd.worker import DifficultyModel
from repro.crowd.workforce import Workforce, WorkforceAnswerFile
from repro.datasets.schema import GoldStandard


class TestValidation:
    def test_empty_votes_rejected(self):
        with pytest.raises(ValueError):
            dawid_skene({})

    def test_pair_without_votes_rejected(self):
        with pytest.raises(ValueError):
            dawid_skene({(0, 1): []})


class TestUnanimousVotes:
    def test_unanimous_pairs_get_extreme_posteriors(self):
        votes = {
            (0, 1): [(10, True), (11, True), (12, True)],
            (2, 3): [(10, False), (11, False), (12, False)],
        }
        result = dawid_skene(votes)
        assert result.posteriors[(0, 1)] > 0.9
        assert result.posteriors[(2, 3)] < 0.1

    def test_pair_keys_canonicalized(self):
        votes = {(5, 2): [(1, True)]}
        result = dawid_skene(votes)
        assert (2, 5) in result.posteriors


class TestReliabilityWeighting:
    def make_votes(self):
        """Workers 0-2 always vote truth; worker 3 always votes the
        opposite.  40 true-dup pairs and 40 non-dup pairs."""
        votes = {}
        for i in range(40):
            votes[(2 * i, 2 * i + 1)] = [
                (0, True), (1, True), (3, False)
            ]
        for i in range(40, 80):
            votes[(2 * i, 2 * i + 1)] = [
                (0, False), (2, False), (3, True)
            ]
        return votes

    def test_adversarial_worker_identified(self):
        result = dawid_skene(self.make_votes())
        assert result.workers[3].accuracy < 0.3
        assert result.workers[0].accuracy > 0.9

    def test_posteriors_follow_reliable_workers(self):
        result = dawid_skene(self.make_votes())
        for i in range(40):
            assert result.posteriors[(2 * i, 2 * i + 1)] > 0.8
        for i in range(40, 80):
            assert result.posteriors[(2 * i, 2 * i + 1)] < 0.2

    def test_vote_counts_recorded(self):
        result = dawid_skene(self.make_votes())
        assert result.workers[0].num_votes == 80
        assert result.workers[1].num_votes == 40


def _mixed_pair_workload(num_each=300):
    """Half true-duplicate pairs, half non-duplicate pairs — both classes
    must be present or Dawid-Skene's class prior degenerates."""
    gold = GoldStandard({r: r // 2 for r in range(2 * num_each)})
    duplicate_pairs = [(2 * i, 2 * i + 1) for i in range(num_each)]
    non_duplicate_pairs = [(2 * i, 2 * i + 2) for i in range(num_each - 1)]
    return gold, duplicate_pairs + non_duplicate_pairs


class TestAgainstMajorityVote:
    def test_beats_majority_with_unreliable_minority(self):
        """With a sloppy worker population, Dawid-Skene posteriors label
        pairs more accurately than the raw majority vote."""
        gold, pairs = _mixed_pair_workload(400)
        workforce = Workforce(size=40, reliability_alpha=3.0,
                              reliability_beta=1.6, seed=21)
        answers = WorkforceAnswerFile(
            gold, workforce, DifficultyModel(easy_error=0.02, seed=21),
            panel_size=5,
        )
        answers.prefetch(pairs)

        majority_errors = sum(
            1 for pair in pairs
            if answers.majority_duplicate(*pair) != gold.is_duplicate(*pair)
        )
        result = dawid_skene(answers.all_votes())
        inferred_errors = sum(
            1 for pair in pairs
            if (result.posteriors[pair] > 0.5) != gold.is_duplicate(*pair)
        )
        assert inferred_errors < majority_errors

    def test_recovered_reliabilities_correlate_with_truth(self):
        """Inferred worker accuracies track the simulated reliabilities
        (positive rank correlation over the population)."""
        gold, pairs = _mixed_pair_workload(300)
        workforce = Workforce(size=20, reliability_alpha=3.0,
                              reliability_beta=1.5, seed=8)
        answers = WorkforceAnswerFile(
            gold, workforce, DifficultyModel(easy_error=0.02, seed=8),
            panel_size=5,
        )
        answers.prefetch(pairs)
        result = dawid_skene(answers.all_votes())

        true_reliability = {
            worker.worker_id: worker.reliability
            for worker in workforce.workers()
        }
        samples = [
            (true_reliability[w], result.workers[w].accuracy)
            for w in result.workers if result.workers[w].num_votes >= 30
        ]
        assert len(samples) >= 5
        from scipy.stats import spearmanr
        correlation, _ = spearmanr([s[0] for s in samples],
                                   [s[1] for s in samples])
        assert correlation > 0.5


class TestInferredAnswers:
    def test_pipeline_compatible(self):
        votes = {
            (0, 1): [(0, True), (1, True), (2, True)],
            (1, 2): [(0, False), (1, False), (2, False)],
            (0, 2): [(0, False), (1, False), (2, True)],
        }
        answers = InferredAnswers(dawid_skene(votes), num_workers=3)
        from repro.core.acd import run_acd
        from tests.conftest import make_candidates
        candidates = make_candidates({(0, 1): 0.8, (1, 2): 0.7, (0, 2): 0.6})
        result = run_acd(range(3), candidates, answers, seed=0)
        assert result.clustering.together(0, 1)
        assert not result.clustering.together(1, 2)

    def test_missing_pair_raises(self):
        answers = InferredAnswers(
            dawid_skene({(0, 1): [(0, True)]}), num_workers=1
        )
        with pytest.raises(KeyError):
            answers.confidence(7, 8)

    def test_len(self):
        answers = InferredAnswers(dawid_skene({(0, 1): [(0, True)]}))
        assert len(answers) == 1
