"""Tests for repro.crowd.stats."""

import pytest

from repro.crowd.stats import CrowdStats


class TestRecordBatch:
    def test_zero_new_pairs_costs_nothing(self):
        stats = CrowdStats()
        stats.record_batch(0)
        assert stats.iterations == 0
        assert stats.hits == 0
        assert stats.pairs_issued == 0

    def test_single_batch(self):
        stats = CrowdStats(pairs_per_hit=20, num_workers=3)
        stats.record_batch(45)
        assert stats.pairs_issued == 45
        assert stats.iterations == 1
        assert stats.hits == 3  # ceil(45/20)
        assert stats.votes == 135

    def test_exact_multiple_of_hit_size(self):
        stats = CrowdStats(pairs_per_hit=10)
        stats.record_batch(30)
        assert stats.hits == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CrowdStats().record_batch(-1)

    def test_accumulates(self):
        stats = CrowdStats(pairs_per_hit=10)
        stats.record_batch(5)
        stats.record_batch(25)
        assert stats.pairs_issued == 30
        assert stats.iterations == 2
        assert stats.hits == 1 + 3


class TestMonetaryCost:
    def test_paper_3w_setting(self):
        # 20 pairs/HIT, 3 workers, 2 cents: 40 pairs = 2 HITs x 3 x 2c = 12c.
        stats = CrowdStats(pairs_per_hit=20, num_workers=3,
                           reward_cents_per_hit=2.0)
        stats.record_batch(40)
        assert stats.monetary_cost_cents == 12.0

    def test_paper_5w_setting(self):
        # 10 pairs/HIT, 5 workers, 2 cents: 40 pairs = 4 HITs x 5 x 2c = 40c.
        stats = CrowdStats(pairs_per_hit=10, num_workers=5,
                           reward_cents_per_hit=2.0)
        stats.record_batch(40)
        assert stats.monetary_cost_cents == 40.0


class TestSnapshotAndMerge:
    def test_snapshot_keys(self):
        stats = CrowdStats()
        stats.record_batch(7)
        snapshot = stats.snapshot()
        assert snapshot["pairs_issued"] == 7
        assert snapshot["iterations"] == 1
        assert "cost_cents" in snapshot

    def test_merge_adds_counters(self):
        a = CrowdStats(pairs_per_hit=10)
        b = CrowdStats(pairs_per_hit=10)
        a.record_batch(10)
        b.record_batch(20)
        a.merge(b)
        assert a.pairs_issued == 30
        assert a.iterations == 2
        assert a.hits == 3
