"""Tests for repro.crowd.persistence."""

import json

import pytest

from repro.crowd.cache import AnswerFile, ScriptedAnswers
from repro.crowd.persistence import load_answers, save_answers
from repro.crowd.worker import DifficultyModel, WorkerPool
from repro.datasets.schema import GoldStandard


@pytest.fixture
def answers():
    gold = GoldStandard({0: 0, 1: 0, 2: 1, 3: 2, 4: 2})
    pool = WorkerPool(DifficultyModel(easy_error=0.2, seed=9), num_workers=3)
    return AnswerFile(gold, pool)


class TestRoundTrip:
    def test_save_and_load(self, answers, tmp_path):
        path = tmp_path / "answers.json"
        pairs = [(0, 1), (0, 2), (3, 4)]
        written = save_answers(answers, pairs, path)
        assert written == 3
        loaded = load_answers(path)
        for pair in pairs:
            assert loaded.confidence(*pair) == answers.confidence(*pair)
        assert loaded.num_workers == 3

    def test_duplicate_pairs_written_once(self, answers, tmp_path):
        path = tmp_path / "answers.json"
        written = save_answers(answers, [(0, 1), (1, 0)], path)
        assert written == 1

    def test_loaded_answers_replayable_by_pipeline(self, answers, tmp_path):
        from repro.core.acd import run_acd
        from repro.pruning.candidate import CandidateSet
        path = tmp_path / "answers.json"
        pairs = [(0, 1), (0, 2), (3, 4)]
        save_answers(answers, pairs, path)
        loaded = load_answers(path)
        candidates = CandidateSet(
            pairs=tuple(sorted(pairs)),
            machine_scores={pair: 0.7 for pair in pairs},
            threshold=0.3,
        )
        result = run_acd(range(5), candidates, loaded, seed=0)
        assert result.clustering.num_records == 5


class TestValidation:
    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "answers": []}))
        with pytest.raises(ValueError):
            load_answers(path)

    def test_malformed_payload_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 1, "answers": [["x"]]}))
        with pytest.raises(ValueError):
            load_answers(path)

    def test_non_dict_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]")
        with pytest.raises(ValueError):
            load_answers(path)

    def test_scripted_answers_saveable(self, tmp_path):
        scripted = ScriptedAnswers({(0, 1): 0.75}, num_workers=5)
        path = tmp_path / "scripted.json"
        save_answers(scripted, [(0, 1)], path)
        loaded = load_answers(path)
        assert loaded.confidence(0, 1) == 0.75
        assert loaded.num_workers == 5
