"""Property-based tests for the platform simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crowd.platform import PlatformSimulator
from repro.crowd.worker import DifficultyModel
from repro.crowd.workforce import Workforce
from repro.datasets.schema import GoldStandard


def build(seed, pairs_per_hit, assignments, pool):
    return PlatformSimulator(
        workforce=Workforce(size=max(pool, 12), seed=seed),
        gold=GoldStandard({r: r // 2 for r in range(2000)}),
        difficulty=DifficultyModel(easy_error=0.1, seed=seed),
        pairs_per_hit=pairs_per_hit,
        assignments_per_hit=assignments,
        concurrent_workers=pool,
        seed=seed,
    )


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, 1000),
    st.integers(1, 10),    # pairs per HIT
    st.integers(1, 5),     # assignments per HIT
    st.integers(5, 12),    # pool size
    st.integers(0, 60),    # number of pairs
)
def test_platform_invariants(seed, pairs_per_hit, assignments, pool,
                             num_pairs):
    platform = build(seed, pairs_per_hit, max(1, min(assignments, pool)),
                     pool)
    pairs = [(2 * i, 2 * i + 1) for i in range(num_pairs)]
    receipt = platform.post_batch(pairs)

    # Every pair answered with a confidence that is a vote fraction.
    assert set(receipt.confidences) == set(pairs)
    for confidence in receipt.confidences.values():
        votes = confidence * platform.assignments_per_hit
        assert abs(votes - round(votes)) < 1e-9
        assert 0.0 <= confidence <= 1.0

    # Exactly assignments_per_hit distinct workers per HIT.
    per_hit = {}
    for assignment in receipt.assignments:
        per_hit.setdefault(assignment.hit_index, []).append(
            assignment.worker_id
        )
    import math
    expected_hits = math.ceil(num_pairs / pairs_per_hit) if num_pairs else 0
    assert len(per_hit) == expected_hits
    for workers in per_hit.values():
        assert len(workers) == platform.assignments_per_hit
        assert len(set(workers)) == len(workers)

    # Time is consistent: submissions inside the batch window.
    for assignment in receipt.assignments:
        assert receipt.posted_at <= assignment.started_at
        assert assignment.started_at < assignment.submitted_at
        assert assignment.submitted_at <= receipt.completed_at

    # Money is conserved: receipt cost equals the earnings delta.
    assert receipt.cost_cents == (
        len(receipt.assignments) * platform.reward_cents_per_hit
    )
    assert sum(platform.earnings().values()) == platform.total_cost_cents()


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 1000), st.lists(st.integers(0, 40), max_size=4))
def test_clock_monotone_across_batches(seed, batch_sizes):
    platform = build(seed, pairs_per_hit=5, assignments=3, pool=8)
    previous_end = 0.0
    offset = 0
    for size in batch_sizes:
        pairs = [(2 * (offset + i), 2 * (offset + i) + 1)
                 for i in range(size)]
        offset += size
        receipt = platform.post_batch(pairs)
        assert receipt.posted_at == previous_end
        assert receipt.completed_at >= receipt.posted_at
        previous_end = receipt.completed_at
    assert platform.clock_seconds == previous_end
