"""Tests for repro.crowd.adaptive (the future-work extension)."""

import pytest

from repro.crowd.adaptive import AdaptiveAnswerFile
from repro.crowd.worker import DifficultyModel, WorkerPool
from repro.datasets.schema import GoldStandard


def make_gold(pairs=200):
    # Records 2i and 2i+1 are duplicates; everything else distinct.
    return GoldStandard({
        record: record // 2 for record in range(2 * pairs)
    })


class TestConstruction:
    def test_escalated_must_exceed_base(self):
        gold = make_gold(1)
        pool = WorkerPool(DifficultyModel(), num_workers=3)
        with pytest.raises(ValueError):
            AdaptiveAnswerFile(gold, pool, escalated_workers=3)

    def test_negative_margin_rejected(self):
        gold = make_gold(1)
        pool = WorkerPool(DifficultyModel(), num_workers=3)
        with pytest.raises(ValueError):
            AdaptiveAnswerFile(gold, pool, escalated_workers=5, margin=-1)


class TestEscalation:
    def test_unanimous_easy_pairs_stay_cheap(self):
        gold = make_gold(50)
        pool = WorkerPool(DifficultyModel(easy_error=0.0), num_workers=3)
        answers = AdaptiveAnswerFile(gold, pool, escalated_workers=7)
        answers.prefetch([(2 * i, 2 * i + 1) for i in range(50)])
        assert answers.escalation_rate() == 0.0
        assert answers.total_votes_spent() == 50 * 3

    def test_split_votes_escalate(self):
        gold = make_gold(300)
        # Error 0.4: plenty of 2-1 splits on a 3-worker panel.
        pool = WorkerPool(DifficultyModel(easy_error=0.4, seed=3),
                          num_workers=3)
        answers = AdaptiveAnswerFile(gold, pool, escalated_workers=7)
        answers.prefetch([(2 * i, 2 * i + 1) for i in range(300)])
        assert answers.escalation_rate() > 0.3
        escalated = [
            (2 * i, 2 * i + 1) for i in range(300)
            if answers.votes_spent(2 * i, 2 * i + 1) > 3
        ]
        for pair in escalated:
            assert answers.votes_spent(*pair) == 3 + 7

    def test_memoized(self):
        gold = make_gold(1)
        pool = WorkerPool(DifficultyModel(easy_error=0.3, seed=1),
                          num_workers=3)
        answers = AdaptiveAnswerFile(gold, pool, escalated_workers=7)
        first = answers.confidence(0, 1)
        assert answers.confidence(1, 0) == first
        assert len(answers) == 1

    def test_confidence_in_unit_interval(self):
        gold = make_gold(40)
        pool = WorkerPool(DifficultyModel(easy_error=0.45, seed=2),
                          num_workers=3)
        answers = AdaptiveAnswerFile(gold, pool, escalated_workers=9)
        for i in range(40):
            value = answers.confidence(2 * i, 2 * i + 1)
            assert 0.0 <= value <= 1.0


class TestAccuracyBenefit:
    def test_escalation_reduces_error_on_moderately_hard_pairs(self):
        """On pairs with a ~30% per-worker error rate, escalating split
        votes to a 9-worker panel must beat the flat 3-worker majority."""
        gold = make_gold(1500)
        pairs = [(2 * i, 2 * i + 1) for i in range(1500)]
        difficulty = DifficultyModel(easy_error=0.3, seed=5)

        flat = WorkerPool(difficulty, num_workers=3)
        flat_errors = sum(
            1 for a, b in pairs if flat.confidence(a, b, True) <= 0.5
        ) / len(pairs)

        adaptive = AdaptiveAnswerFile(gold, WorkerPool(difficulty, 3),
                                      escalated_workers=9)
        adaptive_errors = 1.0 - sum(
            1 for a, b in pairs if adaptive.majority_duplicate(a, b)
        ) / len(pairs)

        assert adaptive_errors < flat_errors

    def test_cheaper_than_flat_large_panel(self):
        """Adaptive assignment spends fewer votes than giving every pair
        the escalated panel outright."""
        gold = make_gold(400)
        pairs = [(2 * i, 2 * i + 1) for i in range(400)]
        difficulty = DifficultyModel(easy_error=0.15, seed=6)
        adaptive = AdaptiveAnswerFile(gold, WorkerPool(difficulty, 3),
                                      escalated_workers=9)
        adaptive.prefetch(pairs)
        flat_cost = len(pairs) * 9
        assert adaptive.total_votes_spent() < flat_cost


class TestErrorRate:
    def test_empty_pairs(self):
        gold = make_gold(1)
        pool = WorkerPool(DifficultyModel(), num_workers=3)
        answers = AdaptiveAnswerFile(gold, pool, escalated_workers=5)
        assert answers.majority_error_rate([]) == 0.0
