"""Tests for repro.crowd.cache (AnswerFile and ScriptedAnswers)."""

import pytest

from repro.crowd.cache import AnswerFile, ScriptedAnswers
from repro.crowd.worker import DifficultyModel, WorkerPool
from repro.datasets.schema import GoldStandard


@pytest.fixture
def gold():
    # Entities: {0,1} together; {2}; {3,4} together.
    return GoldStandard({0: 0, 1: 0, 2: 1, 3: 2, 4: 2})


@pytest.fixture
def answer_file(gold):
    pool = WorkerPool(DifficultyModel(easy_error=0.0), num_workers=3)
    return AnswerFile(gold, pool)


class TestAnswerFile:
    def test_perfect_workers_match_gold(self, answer_file, gold):
        assert answer_file.confidence(0, 1) == 1.0
        assert answer_file.confidence(0, 2) == 0.0
        assert answer_file.majority_duplicate(3, 4)
        assert not answer_file.majority_duplicate(1, 3)

    def test_memoized(self, answer_file):
        answer_file.confidence(0, 1)
        assert len(answer_file) == 1
        answer_file.confidence(1, 0)  # same canonical pair
        assert len(answer_file) == 1

    def test_replay_identical(self, gold):
        pool = WorkerPool(DifficultyModel(easy_error=0.3, seed=4), num_workers=3)
        file_a = AnswerFile(gold, pool)
        file_b = AnswerFile(gold, pool)
        pairs = [(0, 1), (0, 2), (1, 3), (2, 4)]
        assert [file_a.confidence(*p) for p in pairs] == [
            file_b.confidence(*p) for p in pairs
        ]

    def test_prefetch(self, answer_file):
        answer_file.prefetch([(0, 1), (2, 3)])
        assert len(answer_file) == 2

    def test_error_rate_zero_with_perfect_workers(self, answer_file):
        pairs = [(0, 1), (0, 2), (3, 4), (1, 4)]
        assert answer_file.majority_error_rate(pairs) == 0.0

    def test_error_rate_empty_pairs(self, answer_file):
        assert answer_file.majority_error_rate([]) == 0.0

    def test_error_rate_counts_majority_mistakes(self, gold):
        # Error probability 1.0: every worker always wrong -> error rate 1.
        pool = WorkerPool(DifficultyModel(easy_error=1.0), num_workers=3)
        answers = AnswerFile(gold, pool)
        assert answers.majority_error_rate([(0, 1), (0, 2)]) == 1.0

    def test_num_workers_exposed(self, answer_file):
        assert answer_file.num_workers == 3


class TestScriptedAnswers:
    def test_serves_scripted_values(self):
        answers = ScriptedAnswers({(1, 0): 0.75})
        assert answers.confidence(0, 1) == 0.75
        assert answers.confidence(1, 0) == 0.75

    def test_missing_pair_raises_without_default(self):
        answers = ScriptedAnswers({(0, 1): 0.9})
        with pytest.raises(KeyError):
            answers.confidence(5, 6)

    def test_default_served_for_missing(self):
        answers = ScriptedAnswers({(0, 1): 0.9}, default=0.0)
        assert answers.confidence(5, 6) == 0.0

    def test_majority(self):
        answers = ScriptedAnswers({(0, 1): 0.6, (1, 2): 0.5})
        assert answers.majority_duplicate(0, 1)
        assert not answers.majority_duplicate(1, 2)  # strictly > 0.5

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValueError):
            ScriptedAnswers({(0, 1): 1.2})

    def test_len(self):
        assert len(ScriptedAnswers({(0, 1): 0.1, (1, 2): 0.2})) == 2
