"""Tests for repro.baselines.transnode."""

from repro.baselines.transnode import transnode
from repro.crowd.oracle import CrowdOracle
from repro.eval.metrics import f1_score
from tests.conftest import make_candidates, scripted_oracle


class TestClustering:
    def test_perfect_answers(self):
        candidates = make_candidates({(0, 1): 0.9, (1, 2): 0.8, (0, 2): 0.7,
                                      (3, 4): 0.9})
        oracle = scripted_oracle({(0, 1): 1.0, (1, 2): 1.0, (0, 2): 1.0,
                                  (3, 4): 0.0}, default=0.0)
        clustering = transnode(range(5), candidates, oracle)
        assert clustering.together(0, 1) and clustering.together(1, 2)
        assert not clustering.together(3, 4)

    def test_one_question_decides_cluster_membership(self):
        """Joining a 2-record cluster costs one question, not two."""
        candidates = make_candidates({(0, 1): 0.9, (1, 2): 0.8, (0, 2): 0.85})
        oracle = scripted_oracle({(0, 1): 1.0, (1, 2): 1.0, (0, 2): 1.0})
        transnode(range(3), candidates, oracle)
        # Insertions: first record free; second asks 1; third asks 1.
        assert oracle.stats.pairs_issued == 2

    def test_negative_answer_rules_out_whole_cluster(self):
        candidates = make_candidates({(0, 1): 0.9, (0, 2): 0.8, (1, 2): 0.8})
        oracle = scripted_oracle({(0, 1): 1.0, (0, 2): 0.0, (1, 2): 0.0})
        clustering = transnode(range(3), candidates, oracle)
        assert clustering.together(0, 1)
        assert not clustering.together(0, 2)
        # Record 2 asked at most one question against the {0,1} cluster.
        assert oracle.stats.pairs_issued <= 3

    def test_sequential_one_pair_per_iteration(self):
        candidates = make_candidates({(0, 1): 0.9, (2, 3): 0.9})
        oracle = scripted_oracle({(0, 1): 1.0, (2, 3): 1.0})
        transnode(range(4), candidates, oracle)
        assert oracle.stats.iterations == oracle.stats.pairs_issued

    def test_isolated_records_cost_nothing(self):
        candidates = make_candidates({})
        oracle = scripted_oracle({})
        clustering = transnode(range(4), candidates, oracle)
        assert len(clustering) == 4
        assert oracle.stats.pairs_issued == 0

    def test_covers_all_records(self, tiny_product):
        oracle = CrowdOracle(tiny_product.answers)
        clustering = transnode(tiny_product.record_ids,
                               tiny_product.candidates, oracle)
        assert clustering.num_records == len(tiny_product.dataset)
        assert f1_score(clustering, tiny_product.dataset.gold) > 0.3
