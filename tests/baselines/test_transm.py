"""Tests for repro.baselines.transm — including the paper's Figure 1
error-amplification scenario."""

import pytest

from repro.baselines.transm import transm
from repro.crowd.oracle import CrowdOracle
from tests.conftest import make_candidates, scripted_oracle


class TestInference:
    def test_perfect_answers_perfect_closure(self):
        candidates = make_candidates({(0, 1): 0.9, (1, 2): 0.8, (0, 2): 0.7})
        oracle = scripted_oracle({(0, 1): 1.0, (1, 2): 1.0, (0, 2): 1.0})
        clustering = transm([0, 1, 2], candidates, oracle)
        assert clustering.together(0, 1) and clustering.together(1, 2)

    def test_positive_transitivity_saves_questions(self):
        """After 0=1 and 1=2, the pair (0,2) must be inferred, not asked."""
        candidates = make_candidates({(0, 1): 0.9, (1, 2): 0.8, (0, 2): 0.7})
        oracle = scripted_oracle({(0, 1): 1.0, (1, 2): 1.0, (0, 2): 1.0})
        transm([0, 1, 2], candidates, oracle)
        assert oracle.stats.pairs_issued == 2

    def test_negative_transitivity_saves_questions(self):
        """0=1 (dup) and 1≠2 imply 0≠2 without asking."""
        candidates = make_candidates({(0, 1): 0.9, (1, 2): 0.8, (0, 2): 0.7})
        oracle = scripted_oracle({(0, 1): 1.0, (1, 2): 0.0, (0, 2): 1.0})
        clustering = transm([0, 1, 2], candidates, oracle)
        assert not clustering.together(0, 2)
        assert oracle.stats.pairs_issued == 2

    def test_similarity_order_drives_question_order(self):
        """The most similar pair is asked first, so inference favors it."""
        # (1,2) has the highest machine score; answering it dup and (0,1)
        # non-dup infers (0,2) as non-dup.
        candidates = make_candidates({(0, 1): 0.6, (1, 2): 0.95, (0, 2): 0.5})
        oracle = scripted_oracle({(0, 1): 0.0, (1, 2): 1.0, (0, 2): 1.0})
        clustering = transm([0, 1, 2], candidates, oracle)
        assert clustering.together(1, 2)
        assert not clustering.together(0, 1)
        assert not clustering.together(0, 2)  # inferred negative
        assert oracle.stats.pairs_issued == 2

    def test_records_without_candidates_are_singletons(self):
        candidates = make_candidates({(0, 1): 0.9})
        oracle = scripted_oracle({(0, 1): 1.0})
        clustering = transm([0, 1, 2], candidates, oracle)
        assert clustering.members(clustering.cluster_of(2)) == {2}


class TestFigure1ErrorAmplification:
    def test_one_wrong_answer_merges_two_entities(self):
        """Figure 1: groups {a1..a3} and {b1..b3} fully linked internally;
        one false-positive cross answer glues all six records together."""
        a1, a2, a3, b1, b2, b3 = range(6)
        scores = {}
        confidences = {}
        for group in ((a1, a2, a3), (b1, b2, b3)):
            for i, x in enumerate(group):
                for y in group[i + 1:]:
                    scores[(x, y)] = 0.9
                    confidences[(x, y)] = 1.0
        # The single cross pair the crowd gets WRONG, with a machine score
        # low enough that it is asked after the within-group pairs.
        scores[(a2, b2)] = 0.5
        confidences[(a2, b2)] = 1.0  # crowd mistake: marked duplicate
        clustering = transm(range(6), make_candidates(scores),
                            scripted_oracle(confidences))
        assert len(clustering) == 1  # everything collapsed into one cluster

    def test_acd_resists_the_same_error(self):
        """Contrast test: ACD's correlation clustering + refinement does not
        collapse the two groups on the same wrong answer."""
        from repro.core.acd import run_acd
        from repro.crowd.cache import ScriptedAnswers

        a1, a2, a3, b1, b2, b3 = range(6)
        scores = {}
        confidences = {}
        for group in ((a1, a2, a3), (b1, b2, b3)):
            for i, x in enumerate(group):
                for y in group[i + 1:]:
                    scores[(x, y)] = 0.9
                    confidences[(x, y)] = 1.0
        scores[(a2, b2)] = 0.5
        confidences[(a2, b2)] = 1.0  # same crowd mistake
        candidates = make_candidates(scores)
        answers = ScriptedAnswers(confidences, num_workers=3)
        collapsed = 0
        for seed in range(5):
            result = run_acd(range(6), candidates, answers, seed=seed)
            if len(result.clustering) == 1:
                collapsed += 1
        assert collapsed == 0


class TestBatching:
    def test_disjoint_pairs_share_an_iteration(self):
        candidates = make_candidates({(0, 1): 0.9, (2, 3): 0.8})
        oracle = scripted_oracle({(0, 1): 1.0, (2, 3): 1.0})
        transm([0, 1, 2, 3], candidates, oracle)
        assert oracle.stats.iterations == 1

    def test_cluster_sharing_pairs_are_deferred(self):
        candidates = make_candidates({(0, 1): 0.9, (1, 2): 0.8})
        oracle = scripted_oracle({(0, 1): 1.0, (1, 2): 0.0})
        transm([0, 1, 2], candidates, oracle)
        assert oracle.stats.iterations == 2

    def test_iterations_far_below_pairs_on_real_data(self, tiny_restaurant):
        oracle = CrowdOracle(tiny_restaurant.answers)
        transm(tiny_restaurant.record_ids, tiny_restaurant.candidates, oracle)
        assert 0 < oracle.stats.iterations < oracle.stats.pairs_issued
