"""Tests for repro.baselines.agglomerative (VOTE and hierarchical)."""

import pytest

from repro.baselines.agglomerative import (
    agglomerative_clustering,
    vote_clustering,
)
from tests.conftest import make_candidates


class TestVoteClustering:
    def test_simple_pair_joins(self):
        candidates = make_candidates({(0, 1): 0.9})
        clustering = vote_clustering([0, 1, 2], candidates)
        assert clustering.together(0, 1)
        assert not clustering.together(0, 2)

    def test_negative_net_starts_new_cluster(self):
        candidates = make_candidates({(0, 1): 0.4})  # 2*0.4-1 = -0.2 < 0
        clustering = vote_clustering([0, 1], candidates)
        assert not clustering.together(0, 1)

    def test_unscored_members_vote_against(self):
        # Record 2 has a strong edge to 1 but none to 0; if {0,1} formed
        # first, net for joining = (2*0.8-1) - 1 = -0.4 < 0 -> stays out.
        candidates = make_candidates({(0, 1): 0.9, (1, 2): 0.8})
        clustering = vote_clustering([0, 1, 2], candidates)
        assert clustering.together(0, 1)
        assert not clustering.together(1, 2)

    def test_strong_chain_overcomes_missing_edge(self):
        # (1,2) strong enough that even with the missing (0,2) edge the
        # net vote is positive: (2*0.99-1) - 1 < 0... so use both edges.
        candidates = make_candidates({(0, 1): 0.9, (1, 2): 0.9, (0, 2): 0.9})
        clustering = vote_clustering([0, 1, 2], candidates)
        assert clustering.together(0, 1) and clustering.together(1, 2)

    def test_insertion_order_matters(self):
        candidates = make_candidates({(0, 1): 0.7, (1, 2): 0.7})
        default = vote_clustering([0, 1, 2], candidates)
        reordered = vote_clustering([0, 1, 2], candidates, order=[2, 1, 0])
        # Both are valid clusterings over the same records.
        assert default.num_records == reordered.num_records == 3

    def test_invalid_order_rejected(self):
        candidates = make_candidates({})
        with pytest.raises(ValueError):
            vote_clustering([0, 1], candidates, order=[0])

    def test_covers_all_records(self, tiny_restaurant):
        clustering = vote_clustering(
            tiny_restaurant.record_ids, tiny_restaurant.candidates
        )
        assert clustering.num_records == len(tiny_restaurant.dataset)


class TestAgglomerative:
    def test_merges_above_threshold(self):
        candidates = make_candidates({(0, 1): 0.9, (2, 3): 0.4})
        clustering = agglomerative_clustering(range(4), candidates,
                                              threshold=0.5)
        assert clustering.together(0, 1)
        assert not clustering.together(2, 3)

    def test_highest_linkage_merged_first(self):
        # 1 is pulled both ways; average linkage decides.
        candidates = make_candidates({(0, 1): 0.9, (1, 2): 0.6})
        clustering = agglomerative_clustering(range(3), candidates,
                                              threshold=0.5, linkage="average")
        assert clustering.together(0, 1)
        # After {0,1} forms, linkage({0,1},{2}) = (0 + 0.6)/2 = 0.3 < 0.5.
        assert not clustering.together(1, 2)

    def test_single_linkage_chains(self):
        candidates = make_candidates({(0, 1): 0.9, (1, 2): 0.9})
        clustering = agglomerative_clustering(range(3), candidates,
                                              threshold=0.5, linkage="single")
        # Single linkage ignores the missing (0,2) edge and chains.
        assert clustering.together(0, 2)

    def test_complete_linkage_requires_all_edges(self):
        candidates = make_candidates({(0, 1): 0.9, (1, 2): 0.9})
        clustering = agglomerative_clustering(range(3), candidates,
                                              threshold=0.5,
                                              linkage="complete")
        # Complete linkage vetoes the chain: (0,2) is missing (score 0).
        assert not clustering.together(0, 2)

    def test_invalid_linkage(self):
        with pytest.raises(ValueError):
            agglomerative_clustering([0, 1], make_candidates({}),
                                     linkage="median")

    def test_partition_valid_on_real_instance(self, tiny_restaurant):
        from repro.eval.metrics import f1_score
        clustering = agglomerative_clustering(
            tiny_restaurant.record_ids, tiny_restaurant.candidates,
            threshold=0.5, linkage="average",
        )
        clustering.check_invariants()
        assert clustering.num_records == len(tiny_restaurant.dataset)
        # Machine-only clustering on the confusable Restaurant graph is
        # genuinely weak (that is the paper's motivation for the crowd);
        # it must still clearly beat the all-singletons strawman.
        assert f1_score(clustering, tiny_restaurant.dataset.gold) > 0.15
