"""Tests for repro.baselines.gcer."""

import pytest

from repro.baselines.gcer import gcer
from repro.crowd.oracle import CrowdOracle
from tests.conftest import make_candidates, scripted_oracle


class TestBudget:
    def test_budget_respected(self, tiny_restaurant):
        oracle = CrowdOracle(tiny_restaurant.answers)
        gcer(tiny_restaurant.record_ids, tiny_restaurant.candidates, oracle,
             budget=50)
        assert oracle.stats.pairs_issued <= 50

    def test_zero_budget_uses_machine_scores_only(self):
        candidates = make_candidates({(0, 1): 0.9, (2, 3): 0.2})
        oracle = scripted_oracle({(0, 1): 0.0, (2, 3): 1.0})
        clustering = gcer(range(4), candidates, oracle, budget=0)
        assert oracle.stats.pairs_issued == 0
        # Falls back to machine evidence: 0.9 > 0.5 merges, 0.2 doesn't.
        assert clustering.together(0, 1)
        assert not clustering.together(2, 3)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            gcer([0, 1], make_candidates({}), scripted_oracle({}), budget=-1)

    def test_budget_larger_than_candidate_set(self):
        candidates = make_candidates({(0, 1): 0.9})
        oracle = scripted_oracle({(0, 1): 1.0})
        clustering = gcer(range(2), candidates, oracle, budget=100)
        assert oracle.stats.pairs_issued == 1
        assert clustering.together(0, 1)


class TestSelection:
    def test_most_uncertain_pairs_asked_first(self):
        """Uncertainty selection: with budget 1, the pair whose estimated
        score is nearest 0.5 (before any answers: the machine score) is the
        one asked."""
        candidates = make_candidates({(0, 1): 0.95, (2, 3): 0.52})
        oracle = scripted_oracle({(0, 1): 1.0, (2, 3): 0.0})
        gcer(range(4), candidates, oracle, budget=1, batch_size=1,
             selection="uncertainty")
        assert oracle.knows(2, 3)
        assert not oracle.knows(0, 1)

    def test_most_similar_pairs_asked_first(self):
        """Default selection: the most-likely duplicate goes first."""
        candidates = make_candidates({(0, 1): 0.95, (2, 3): 0.52})
        oracle = scripted_oracle({(0, 1): 1.0, (2, 3): 0.0})
        gcer(range(4), candidates, oracle, budget=1, batch_size=1)
        assert oracle.knows(0, 1)
        assert not oracle.knows(2, 3)

    def test_invalid_selection(self):
        with pytest.raises(ValueError):
            gcer([0, 1], make_candidates({}), scripted_oracle({}),
                 budget=0, selection="magic")


class TestGeneralization:
    def test_crowd_answers_override_machine(self):
        candidates = make_candidates({(0, 1): 0.9})
        oracle = scripted_oracle({(0, 1): 0.0})
        clustering = gcer(range(2), candidates, oracle, budget=10)
        assert not clustering.together(0, 1)

    def test_histogram_generalizes_to_unasked_pairs(self):
        """If every asked pair with machine ~0.6 turns out non-duplicate,
        an unasked machine-0.6 pair should be labelled non-duplicate too."""
        scores = {(i, i + 100): 0.6 for i in range(10)}
        scores[(50, 51)] = 0.55  # the unasked victim (lowest score)
        answers = {pair: 0.0 for pair in scores}
        answers[(50, 51)] = 1.0  # truth says duplicate, but GCER never asks
        candidates = make_candidates(scores)
        oracle = scripted_oracle(answers)
        clustering = gcer(list(range(10)) + list(range(100, 110)) + [50, 51],
                          candidates, oracle, budget=10, batch_size=10)
        assert not clustering.together(50, 51)

    def test_transitive_closure_amplifies_errors(self):
        """GCER's closure glues chains together through a single wrong
        answer — the weakness the ACD paper points out."""
        candidates = make_candidates({(0, 1): 0.9, (1, 2): 0.9})
        oracle = scripted_oracle({(0, 1): 1.0, (1, 2): 0.9})  # (1,2) wrong
        clustering = gcer(range(3), candidates, oracle, budget=10)
        assert clustering.together(0, 2)  # collapsed through transitivity
