"""Tests for repro.baselines.machine (machine-only Pivot and BOEM)."""

import pytest

from repro.baselines.machine import boem, machine_pivot
from repro.core.clustering import Clustering
from repro.core.objective import lambda_objective
from repro.core.permutation import Permutation
from tests.conftest import make_candidates


class TestMachinePivot:
    def test_threshold_drives_membership(self):
        candidates = make_candidates({(0, 1): 0.9, (0, 2): 0.4})
        permutation = Permutation([0, 1, 2])
        clustering = machine_pivot(range(3), candidates,
                                   permutation=permutation)
        assert clustering.together(0, 1)
        assert not clustering.together(0, 2)

    def test_no_crowd_needed(self):
        """Machine pivot takes no oracle at all — it is crowd-free."""
        candidates = make_candidates({(0, 1): 0.9})
        clustering = machine_pivot(range(2), candidates, seed=0)
        assert clustering.num_records == 2

    def test_custom_threshold(self):
        candidates = make_candidates({(0, 1): 0.45})
        permutation = Permutation([0, 1])
        strict = machine_pivot(range(2), candidates, threshold=0.5,
                               permutation=permutation)
        lenient = machine_pivot(range(2), candidates, threshold=0.4,
                                permutation=permutation)
        assert not strict.together(0, 1)
        assert lenient.together(0, 1)

    def test_deterministic_by_seed(self):
        candidates = make_candidates({(0, 1): 0.9, (1, 2): 0.9})
        a = machine_pivot(range(3), candidates, seed=7)
        b = machine_pivot(range(3), candidates, seed=7)
        assert a.as_sets() == b.as_sets()


class TestBoem:
    def scores(self):
        values = {(0, 1): 0.9, (0, 2): 0.8, (1, 2): 0.85, (3, 4): 0.1}
        def lookup(a, b):
            return values.get((min(a, b), max(a, b)), 0.0)
        return values, lookup

    def test_improves_bad_clustering(self):
        values, lookup = self.scores()
        clustering = Clustering([{0, 3}, {1, 4}, {2}])
        before = lambda_objective(clustering.copy(), values, lookup)
        refined = boem(clustering, range(5), lookup)
        after = lambda_objective(refined, values, lookup)
        assert after < before

    def test_reaches_local_optimum_on_clean_instance(self):
        values, lookup = self.scores()
        refined = boem(Clustering.singletons(range(5)), range(5), lookup)
        assert refined.together(0, 1) and refined.together(1, 2)
        assert not refined.together(3, 4)

    def test_never_increases_objective(self):
        values, lookup = self.scores()
        clustering = Clustering([{0, 4}, {1, 3}, {2}])
        before = lambda_objective(clustering.copy(), values, lookup)
        refined = boem(clustering, range(5), lookup)
        assert lambda_objective(refined, values, lookup) <= before + 1e-9

    def test_stable_when_already_optimal(self):
        values, lookup = self.scores()
        clustering = Clustering([{0, 1, 2}, {3}, {4}])
        refined = boem(clustering, range(5), lookup)
        assert refined.as_sets() == [
            frozenset({0, 1, 2}), frozenset({3}), frozenset({4})
        ]

    def test_max_rounds_caps_work(self):
        values, lookup = self.scores()
        refined = boem(Clustering.singletons(range(5)), range(5), lookup,
                       max_rounds=1)
        refined.check_invariants()
