"""Tests for repro.baselines.crowder (CrowdER+)."""

from repro.baselines.crowder import crowder_plus
from repro.crowd.oracle import CrowdOracle
from repro.eval.metrics import f1_score
from tests.conftest import make_candidates, scripted_oracle


class TestCost:
    def test_crowdsources_entire_candidate_set(self, tiny_restaurant):
        oracle = CrowdOracle(tiny_restaurant.answers)
        crowder_plus(tiny_restaurant.record_ids, tiny_restaurant.candidates,
                     oracle)
        assert oracle.stats.pairs_issued == len(tiny_restaurant.candidates)

    def test_exactly_one_crowd_iteration(self, tiny_restaurant):
        oracle = CrowdOracle(tiny_restaurant.answers)
        crowder_plus(tiny_restaurant.record_ids, tiny_restaurant.candidates,
                     oracle)
        assert oracle.stats.iterations == 1


class TestClustering:
    def test_confirmed_pairs_merge(self):
        candidates = make_candidates({(0, 1): 0.9, (2, 3): 0.9})
        oracle = scripted_oracle({(0, 1): 1.0, (2, 3): 0.2})
        clustering = crowder_plus(range(4), candidates, oracle)
        assert clustering.together(0, 1)
        assert not clustering.together(2, 3)

    def test_net_negative_merge_rejected(self):
        """A single positive edge between two otherwise-contradicted groups
        must not merge them (this is the robustness TransM lacks)."""
        # 0-1 strongly dup; 2-3 strongly dup; cross evidence: one wrong
        # positive (1,2), two strong negatives (0,2), (1,3), (0,3).
        candidates = make_candidates({
            (0, 1): 0.9, (2, 3): 0.9, (1, 2): 0.5,
            (0, 2): 0.5, (1, 3): 0.5, (0, 3): 0.5,
        })
        oracle = scripted_oracle({
            (0, 1): 1.0, (2, 3): 1.0, (1, 2): 0.9,
            (0, 2): 0.0, (1, 3): 0.0, (0, 3): 0.0,
        })
        clustering = crowder_plus(range(4), candidates, oracle)
        assert clustering.together(0, 1)
        assert clustering.together(2, 3)
        assert not clustering.together(1, 2)

    def test_strongest_evidence_merged_first(self):
        """Sorted-neighborhood ordering: the 0.9 pair commits before the
        0.6 pair can pull a record elsewhere."""
        candidates = make_candidates({(0, 1): 0.9, (1, 2): 0.9})
        oracle = scripted_oracle({(0, 1): 0.9, (1, 2): 0.6})
        clustering = crowder_plus(range(3), candidates, oracle)
        assert clustering.together(0, 1)
        # (1,2) merge considered after: cross evidence (0,2) pruned -> 0,
        # so benefit = (2*0.6-1) + (2*0-1) = -0.8 -> rejected.
        assert not clustering.together(1, 2)

    def test_highest_accuracy_on_real_instance(self, tiny_paper):
        """CrowdER+ should beat bare PC-Pivot on the hard dataset."""
        from repro.core.pc_pivot import pc_pivot
        crowder_oracle = CrowdOracle(tiny_paper.answers)
        crowder = crowder_plus(tiny_paper.record_ids, tiny_paper.candidates,
                               crowder_oracle)
        pivot_oracle = CrowdOracle(tiny_paper.answers)
        pivot = pc_pivot(tiny_paper.record_ids, tiny_paper.candidates,
                         pivot_oracle, seed=0)
        gold = tiny_paper.dataset.gold
        assert f1_score(crowder, gold) > f1_score(pivot, gold)
