"""Tests for repro.baselines.unionfind."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.unionfind import UnionFind


class TestBasics:
    def test_initial_singletons(self):
        uf = UnionFind([1, 2, 3])
        assert not uf.connected(1, 2)
        assert uf.find(1) == 1

    def test_union_connects(self):
        uf = UnionFind([1, 2, 3])
        uf.union(1, 2)
        assert uf.connected(1, 2)
        assert not uf.connected(1, 3)

    def test_transitivity(self):
        uf = UnionFind([1, 2, 3])
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.connected(1, 3)

    def test_union_returns_root(self):
        uf = UnionFind([1, 2])
        root = uf.union(1, 2)
        assert root in (1, 2)
        assert uf.find(1) == root == uf.find(2)

    def test_add_idempotent(self):
        uf = UnionFind()
        uf.add("x")
        uf.add("x")
        assert uf.find("x") == "x"

    def test_union_already_connected_is_noop(self):
        uf = UnionFind([1, 2])
        uf.union(1, 2)
        root = uf.find(1)
        assert uf.union(1, 2) == root

    def test_groups(self):
        uf = UnionFind([1, 2, 3, 4])
        uf.union(1, 2)
        uf.union(3, 4)
        groups = {frozenset(g) for g in uf.groups()}
        assert groups == {frozenset({1, 2}), frozenset({3, 4})}

    def test_contains(self):
        uf = UnionFind([1])
        assert 1 in uf
        assert 2 not in uf


@settings(deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40,
))
def test_matches_naive_connectivity(unions):
    """Union-find connectivity must match a naive graph reachability check."""
    uf = UnionFind(range(16))
    graph = nx.Graph()
    graph.add_nodes_from(range(16))
    for a, b in unions:
        uf.union(a, b)
        graph.add_edge(a, b)
    components = list(nx.connected_components(graph))
    for component in components:
        members = sorted(component)
        for member in members[1:]:
            assert uf.connected(members[0], member)
    groups = {frozenset(g) for g in uf.groups()}
    assert groups == {frozenset(c) for c in components}
