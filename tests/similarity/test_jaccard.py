"""Tests for repro.similarity.jaccard."""

from repro.similarity.jaccard import jaccard, qgram_jaccard, token_jaccard


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard(frozenset("abc"), frozenset("abc")) == 1.0

    def test_disjoint_sets(self):
        assert jaccard(frozenset("ab"), frozenset("cd")) == 0.0

    def test_partial_overlap(self):
        # |{a,b} ∩ {b,c}| / |{a,b,c}| = 1/3
        assert jaccard(frozenset("ab"), frozenset("bc")) == 1 / 3

    def test_both_empty(self):
        assert jaccard(frozenset(), frozenset()) == 1.0

    def test_one_empty(self):
        assert jaccard(frozenset(), frozenset("a")) == 0.0

    def test_symmetry(self):
        a, b = frozenset("abcd"), frozenset("cdef")
        assert jaccard(a, b) == jaccard(b, a)


class TestTokenJaccard:
    def test_same_tokens_different_order(self):
        assert token_jaccard("blue cafe paris", "paris blue cafe") == 1.0

    def test_case_insensitive(self):
        assert token_jaccard("Blue Cafe", "blue cafe") == 1.0

    def test_half_overlap(self):
        # tokens {a,b} vs {b,c}: 1/3
        assert token_jaccard("a b", "b c") == 1 / 3

    def test_within_unit_interval(self):
        score = token_jaccard("golden grill main st", "golden house oak ave")
        assert 0.0 <= score <= 1.0


class TestQgramJaccard:
    def test_identical(self):
        assert qgram_jaccard("restaurant", "restaurant") == 1.0

    def test_typo_still_similar(self):
        assert qgram_jaccard("restaurant", "restuarant") > 0.4

    def test_unrelated_strings_low(self):
        assert qgram_jaccard("aaaa", "zzzz") < 0.2
