"""Tests for repro.similarity.hybrid."""

import pytest

from repro.similarity.hybrid import (
    dice_coefficient,
    monge_elkan,
    overlap_coefficient,
    token_dice,
    token_overlap,
)


class TestOverlapCoefficient:
    def test_subset_is_one(self):
        assert overlap_coefficient(frozenset("ab"), frozenset("abc")) == 1.0

    def test_disjoint_is_zero(self):
        assert overlap_coefficient(frozenset("ab"), frozenset("cd")) == 0.0

    def test_both_empty(self):
        assert overlap_coefficient(frozenset(), frozenset()) == 1.0

    def test_one_empty(self):
        assert overlap_coefficient(frozenset(), frozenset("a")) == 0.0

    def test_partial(self):
        # {a,b,c} vs {b,c,d,e}: 2 / min(3,4) = 2/3
        assert overlap_coefficient(
            frozenset("abc"), frozenset("bcde")
        ) == pytest.approx(2 / 3)

    def test_at_least_jaccard(self):
        from repro.similarity.jaccard import jaccard
        a, b = frozenset("abcd"), frozenset("cdef")
        assert overlap_coefficient(a, b) >= jaccard(a, b)


class TestDice:
    def test_identical(self):
        assert dice_coefficient(frozenset("abc"), frozenset("abc")) == 1.0

    def test_partial(self):
        # 2*2 / (3+4)
        assert dice_coefficient(
            frozenset("abc"), frozenset("bcde")
        ) == pytest.approx(4 / 7)

    def test_empty_cases(self):
        assert dice_coefficient(frozenset(), frozenset()) == 1.0
        assert dice_coefficient(frozenset("a"), frozenset()) == 0.0

    def test_token_wrappers(self):
        assert token_dice("a b", "a b") == 1.0
        assert token_overlap("a", "a b c") == 1.0


class TestMongeElkan:
    def test_identical_texts(self):
        assert monge_elkan("paul johnson", "paul johnson") == pytest.approx(1.0)

    def test_tolerates_token_typos(self):
        assert monge_elkan("paul johnson", "johson paule") > 0.8

    def test_word_order_invariant_for_exact_tokens(self):
        assert monge_elkan("alpha beta gamma", "gamma alpha beta") == pytest.approx(1.0)

    def test_asymmetric_variant(self):
        # 'a' aligns perfectly into 'a b'; the reverse direction cannot.
        forward = monge_elkan("alpha", "alpha beta", symmetric=False)
        backward = monge_elkan("alpha beta", "alpha", symmetric=False)
        assert forward == pytest.approx(1.0)
        assert backward < 1.0

    def test_symmetric_is_mean_of_directions(self):
        forward = monge_elkan("alpha", "alpha beta", symmetric=False)
        backward = monge_elkan("alpha beta", "alpha", symmetric=False)
        assert monge_elkan("alpha", "alpha beta") == pytest.approx(
            (forward + backward) / 2
        )

    def test_empty_inputs(self):
        assert monge_elkan("", "") == 1.0
        assert monge_elkan("word", "") == 0.0

    def test_custom_inner_metric(self):
        exact = lambda a, b: 1.0 if a == b else 0.0
        assert monge_elkan("a b", "a c", inner=exact) == pytest.approx(0.5)

    def test_range(self):
        assert 0.0 <= monge_elkan("golden grill", "silver spoon") <= 1.0
