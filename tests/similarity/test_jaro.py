"""Tests for repro.similarity.jaro."""

import pytest

from repro.similarity.jaro import jaro_similarity, jaro_winkler_similarity


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_classic_martha_marhta(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_classic_dixon_dicksonx(self):
        assert jaro_similarity("dixon", "dicksonx") == pytest.approx(0.7667, abs=1e-3)

    def test_no_common_characters(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_empty_string(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_symmetry(self):
        assert jaro_similarity("crate", "trace") == jaro_similarity("trace", "crate")


class TestJaroWinkler:
    def test_prefix_boost(self):
        plain = jaro_similarity("prefixed", "prefixes")
        boosted = jaro_winkler_similarity("prefixed", "prefixes")
        assert boosted > plain

    def test_no_boost_without_common_prefix(self):
        assert jaro_winkler_similarity("abc", "xbc") == jaro_similarity("abc", "xbc")

    def test_identical_is_one(self):
        assert jaro_winkler_similarity("same", "same") == 1.0

    def test_stays_in_unit_interval(self):
        assert jaro_winkler_similarity("aaaa", "aaab") <= 1.0

    def test_invalid_prefix_weight(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_weight=0.3)
