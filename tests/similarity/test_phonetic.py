"""Tests for repro.similarity.phonetic."""

from repro.similarity.phonetic import metaphone, phonetic_equal, soundex


class TestSoundex:
    def test_robert_rupert_match(self):
        assert soundex("Robert") == soundex("Rupert") == "R163"

    def test_classic_tymczak(self):
        assert soundex("Tymczak") == "T522"

    def test_classic_pfister(self):
        assert soundex("Pfister") == "P236"

    def test_honeyman(self):
        assert soundex("Honeyman") == "H555"

    def test_empty_word(self):
        assert soundex("") == "0000"

    def test_non_alpha_stripped(self):
        assert soundex("O'Brien") == soundex("OBrien")

    def test_padding(self):
        assert len(soundex("a")) == 4

    def test_custom_length(self):
        assert len(soundex("washington", length=6)) == 6


class TestMetaphone:
    def test_identical_words_match(self):
        assert metaphone("smith") == metaphone("smith")

    def test_ph_maps_to_f(self):
        assert metaphone("phone")[0] == "F"

    def test_kn_prefix_silent_k(self):
        assert metaphone("knight")[0] == "N"

    def test_empty(self):
        assert metaphone("") == ""

    def test_sounds_alike(self):
        assert metaphone("phish") == metaphone("fish")

    def test_doubled_letters_collapse(self):
        assert metaphone("hammer") == metaphone("hamer")


class TestPhoneticEqual:
    def test_homophones(self):
        assert phonetic_equal("Robert", "Rupert")

    def test_different_names(self):
        assert not phonetic_equal("smith", "garcia")
