"""Tests for repro.similarity.fields."""

import pytest

from repro.datasets.schema import Record
from repro.similarity.fields import (
    FieldRule,
    FieldSimilarityConfig,
    exact_match,
)
from repro.similarity.jaro import jaro_winkler_similarity
from repro.similarity.jaccard import token_jaccard


def rec(record_id, text, **fields):
    return Record.make(record_id, text, fields)


class TestExactMatch:
    def test_normalized_equality(self):
        assert exact_match("  NYC ", "nyc") == 1.0

    def test_mismatch(self):
        assert exact_match("nyc", "la") == 0.0


class TestFieldRule:
    def test_weight_validation(self):
        with pytest.raises(ValueError):
            FieldRule("name", exact_match, weight=0.0)


class TestFieldSimilarityConfig:
    def test_requires_rules(self):
        with pytest.raises(ValueError):
            FieldSimilarityConfig([], fallback=token_jaccard)

    def test_weighted_combination(self):
        config = FieldSimilarityConfig(
            [
                FieldRule("name", exact_match, weight=3.0),
                FieldRule("city", exact_match, weight=1.0),
            ],
            fallback=token_jaccard,
        )
        a = rec(0, "blue cafe nyc", name="blue cafe", city="nyc")
        b = rec(1, "blue cafe la", name="blue cafe", city="la")
        # name matches (weight 3), city doesn't (weight 1): 3/4.
        assert config.score(a, b) == pytest.approx(0.75)

    def test_missing_field_uses_fallback(self):
        config = FieldSimilarityConfig(
            [FieldRule("name", exact_match)],
            fallback=lambda x, y: 0.5,
        )
        a = rec(0, "text a", name="x")
        b = rec(1, "text b")  # no name field
        assert config.score(a, b) == pytest.approx(0.5)

    def test_score_clamped(self):
        config = FieldSimilarityConfig(
            [FieldRule("name", lambda x, y: 1.8)],
            fallback=token_jaccard,
        )
        a = rec(0, "t", name="x")
        b = rec(1, "t", name="y")
        assert config.score(a, b) == 1.0

    def test_per_field_metrics(self):
        config = FieldSimilarityConfig(
            [
                FieldRule("name", jaro_winkler_similarity, weight=1.0),
                FieldRule("city", exact_match, weight=1.0),
            ],
            fallback=token_jaccard,
        )
        a = rec(0, "", name="martha", city="nyc")
        b = rec(1, "", name="marhta", city="nyc")
        score = config.score(a, b)
        assert 0.9 < score < 1.0  # near-match name, exact city


class TestAsSimilarityFunction:
    def test_pruning_phase_integration(self):
        from repro.pruning.candidate import build_candidate_set
        config = FieldSimilarityConfig(
            [FieldRule("name", exact_match)],
            fallback=token_jaccard,
        )
        function = config.as_similarity_function()
        records = [
            rec(0, "alpha", name="same"),
            rec(1, "beta", name="same"),
            rec(2, "gamma", name="other"),
        ]
        candidates = build_candidate_set(
            records, function, threshold=0.5, use_token_blocking=False
        )
        assert (0, 1) in candidates
        assert (0, 2) not in candidates

    def test_caching(self):
        calls = []
        def counting(x, y):
            calls.append(1)
            return 1.0
        config = FieldSimilarityConfig(
            [FieldRule("name", counting)], fallback=token_jaccard
        )
        function = config.as_similarity_function()
        a = rec(0, "", name="x")
        b = rec(1, "", name="x")
        function(a, b)
        function(b, a)
        assert len(calls) == 1
