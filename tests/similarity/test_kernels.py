"""Vectorized kernel equivalence: numpy batch scores vs scalar metrics.

The vectorized backend is an optimization, not an approximation — for the
four set metrics it must be *bit-for-bit* equal to the scalar functions
(``token_jaccard``, ``qgram_jaccard``, ``token_cosine``, ...), including
the empty-set conventions and [0, 1] clamping.  These tests pin that down
with hypothesis on random and adversarial inputs (empty fields, unicode,
duplicate tokens) and check the interning layer reproduces the scalar
join's canonical token order exactly.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pruning.prefix_join import canonical_token_order
from repro.similarity.hybrid import token_cosine, token_dice, token_overlap
from repro.similarity.jaccard import qgram_jaccard, token_jaccard
from repro.similarity.kernels import (
    KERNEL_BACKENDS,
    EncodedRecords,
    TokenVocabulary,
    batch_text_scores,
    numpy_available,
    resolve_kernel_backend,
)
from repro.similarity.tokenize import token_set

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="vectorized kernels require numpy"
)

# Random text: lowercase words plus unicode (accents, CJK) and repeats.
words = st.text(alphabet=string.ascii_lowercase + " ", max_size=40)
unicode_words = st.text(
    alphabet=string.ascii_lowercase + " éüßñ東京",
    max_size=40,
)

SCALAR_TEXT_METRICS = {
    "jaccard": token_jaccard,
    "cosine": token_cosine,
    "dice": token_dice,
    "overlap": token_overlap,
}

ADVERSARIAL = [
    "",                        # empty field
    " ",                       # whitespace-only (empty token set)
    "a",
    "a a a a",                 # duplicate tokens collapse to one
    "the the quick quick brown",
    "café crème brûlée",       # unicode accents
    "東京 大阪 café",            # CJK + accents
    "x" * 60,                  # one long token
    "a b c d e f g h i j k l m n o p",
]


@pytest.mark.parametrize("metric", sorted(SCALAR_TEXT_METRICS))
def test_adversarial_pairs_bit_identical(metric):
    scalar = SCALAR_TEXT_METRICS[metric]
    pairs = [(a, b) for a in ADVERSARIAL for b in ADVERSARIAL]
    lefts = [a for a, _ in pairs]
    rights = [b for _, b in pairs]
    batch = batch_text_scores(lefts, rights, metric=metric, domain="word")
    for (a, b), got in zip(pairs, batch):
        want = min(1.0, max(0.0, scalar(a, b)))
        assert got == want and repr(got) == repr(want), (metric, a, b)


@given(st.lists(st.tuples(words, words), min_size=1, max_size=20))
@settings(max_examples=100)
def test_word_jaccard_bit_identical(pairs):
    batch = batch_text_scores([a for a, _ in pairs], [b for _, b in pairs],
                              metric="jaccard", domain="word")
    for (a, b), got in zip(pairs, batch):
        assert got == token_jaccard(a, b)


@given(st.lists(st.tuples(unicode_words, unicode_words),
                min_size=1, max_size=12))
@settings(max_examples=60)
def test_unicode_all_metrics_bit_identical(pairs):
    lefts = [a for a, _ in pairs]
    rights = [b for _, b in pairs]
    for metric, scalar in SCALAR_TEXT_METRICS.items():
        batch = batch_text_scores(lefts, rights, metric=metric, domain="word")
        for (a, b), got in zip(pairs, batch):
            want = min(1.0, max(0.0, scalar(a, b)))
            assert got == want, (metric, a, b)


@given(st.lists(st.tuples(words, words), min_size=1, max_size=12))
@settings(max_examples=60)
def test_qgram_jaccard_bit_identical(pairs):
    batch = batch_text_scores([a for a, _ in pairs], [b for _, b in pairs],
                              metric="jaccard", domain="qgram", q=3)
    for (a, b), got in zip(pairs, batch):
        assert got == qgram_jaccard(a, b, q=3)


@given(st.lists(words, min_size=1, max_size=25))
@settings(max_examples=60)
def test_vocabulary_matches_canonical_token_order(texts):
    sets = [token_set(text) for text in texts]
    vocab = TokenVocabulary.build(sets)
    order = canonical_token_order(sets)
    tokens = sorted(order, key=order.__getitem__)
    assert tokens == sorted(vocab.rank_of, key=vocab.rank_of.__getitem__)
    # Encoded rank arrays sorted ascending == the scalar join's sorted
    # token lists, token for token.
    for token_subset in sets:
        ranks = vocab.encode(token_subset)
        decoded = [tokens[rank] for rank in ranks.tolist()]
        assert decoded == sorted(token_subset, key=order.__getitem__)


@given(st.lists(words, min_size=1, max_size=15))
@settings(max_examples=40)
def test_encoded_records_roundtrip(texts):
    sets = {i: token_set(text) for i, text in enumerate(texts)}
    encoded = EncodedRecords.from_sets(sets, ids=list(sets))
    assert len(encoded) == len(texts)
    vocab = TokenVocabulary.build(sets.values())
    for row, record_id in enumerate(sets):
        start = int(encoded.starts[row])
        count = int(encoded.counts[row])
        ranks = encoded.flat[start:start + count].tolist()
        assert ranks == sorted(vocab.rank_of[t] for t in sets[record_id])
        assert count == len(sets[record_id])


def test_resolve_backend():
    assert resolve_kernel_backend("auto") == "vectorized"
    assert resolve_kernel_backend("vectorized") == "vectorized"
    assert resolve_kernel_backend("scalar") == "scalar"
    with pytest.raises(ValueError):
        resolve_kernel_backend("simd")
    assert KERNEL_BACKENDS == ("auto", "vectorized", "scalar")


def test_resolve_backend_without_numpy(monkeypatch):
    import repro.similarity.kernels as kernels

    monkeypatch.setattr(kernels, "_np", None)
    assert kernels.resolve_kernel_backend("auto") == "scalar"
    assert kernels.resolve_kernel_backend("scalar") == "scalar"
    with pytest.raises(ValueError, match="requires numpy"):
        kernels.resolve_kernel_backend("vectorized")


def test_batch_text_scores_validates():
    with pytest.raises(ValueError, match="aligned"):
        batch_text_scores(["a"], [])
    with pytest.raises(ValueError, match="metric"):
        batch_text_scores(["a"], ["b"], metric="euclid")
    with pytest.raises(ValueError, match="domain"):
        batch_text_scores(["a"], ["b"], domain="chars")
