"""Tests for repro.similarity.views (the shared record-view cache)."""

import pytest

from repro.datasets.schema import Record
from repro.similarity.composite import (
    cosine_set_similarity_function,
    jaccard_similarity_function,
    qgram_similarity_function,
    softtfidf_similarity_function,
)
from repro.similarity.jaccard import token_jaccard
from repro.similarity.softtfidf import SoftTfIdf
from repro.similarity.tokenize import qgrams, word_tokens
from repro.similarity.views import RecordView, RecordViewCache


def rec(i, text):
    return Record(record_id=i, text=text)


class TestRecordView:
    def test_of_matches_tokenizer(self):
        record = rec(0, "Golden Cafe, Golden Gate")
        view = RecordView.of(record)
        assert view.tokens == tuple(word_tokens(record.text))
        assert view.token_set == frozenset(word_tokens(record.text))

    def test_tokens_keep_multiplicity(self):
        view = RecordView.of(rec(0, "a a b"))
        assert view.tokens == ("a", "a", "b")
        assert view.token_set == frozenset({"a", "b"})

    def test_qgram_set_lazy_and_cached(self):
        view = RecordView.of(rec(0, "cafe"))
        assert view.qgram_set(3) == frozenset(qgrams("cafe", q=3))
        assert view.qgram_set(3) is view.qgram_set(3)
        assert view.qgram_set(2) == frozenset(qgrams("cafe", q=2))


class TestRecordViewCache:
    def test_view_computed_once(self):
        cache = RecordViewCache()
        record = rec(0, "golden cafe")
        assert cache.view(record) is cache.view(record)
        assert len(cache) == 1 and 0 in cache

    def test_conflicting_text_rejected(self):
        cache = RecordViewCache()
        cache.view(rec(0, "golden cafe"))
        with pytest.raises(ValueError):
            cache.view(rec(0, "silver spoon"))

    def test_get_by_id(self):
        cache = RecordViewCache([rec(0, "a"), rec(1, "b")])
        assert cache.get(1).token_set == frozenset({"b"})
        with pytest.raises(KeyError):
            cache.get(2)

    def test_token_lists(self):
        cache = RecordViewCache()
        records = [rec(0, "a b"), rec(1, "c")]
        assert cache.token_lists(records) == [("a", "b"), ("c",)]


class TestSharedViews:
    def test_factories_share_one_cache(self):
        """Metrics built on the same cache read the same view objects —
        each record is tokenized exactly once across all of them."""
        views = RecordViewCache()
        jaccard = jaccard_similarity_function(views=views)
        cosine = cosine_set_similarity_function(views=views)
        a, b = rec(0, "golden cafe"), rec(1, "golden grill")
        jaccard(a, b)
        cosine(a, b)
        qgram_similarity_function(views=views)(a, b)
        assert len(views) == 2  # two records, one view each

    def test_view_backed_jaccard_matches_text_jaccard(self):
        records = [rec(0, "golden cafe"), rec(1, "golden grill"),
                   rec(2, ""), rec(3, "")]
        similarity = jaccard_similarity_function()
        for i in range(len(records)):
            for j in range(i + 1, len(records)):
                expected = token_jaccard(records[i].text, records[j].text)
                assert similarity(records[i], records[j]) == expected

    def test_softtfidf_record_path_matches_text_path(self):
        records = [rec(0, "golden gate cafe"), rec(1, "golden cafe"),
                   rec(2, "spoon silver")]
        views = RecordViewCache(records)
        scorer = SoftTfIdf.from_records(records, views=views)
        similarity = softtfidf_similarity_function(records, views=views)
        for i in range(len(records)):
            for j in range(i + 1, len(records)):
                via_records = similarity(records[i], records[j])
                via_text = scorer(records[i].text, records[j].text)
                assert via_records == pytest.approx(via_text)
