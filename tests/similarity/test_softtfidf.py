"""Tests for repro.similarity.softtfidf."""

import pytest

from repro.similarity.softtfidf import SoftTfIdf


CORPUS = [
    "paul johnson machine learning",
    "mary johnson databases",
    "paul smith networks",
    "unique rareword entry",
]


@pytest.fixture
def scorer():
    return SoftTfIdf(CORPUS)


class TestSoftTfIdf:
    def test_identical_texts(self, scorer):
        assert scorer("paul johnson", "paul johnson") == pytest.approx(1.0)

    def test_token_typo_still_matches(self, scorer):
        with_typo = scorer("paul johnson", "paul johson")
        exact = scorer("paul johnson", "completely different words")
        assert with_typo > 0.7
        assert with_typo > exact

    def test_beats_hard_tfidf_on_typos(self):
        from repro.similarity.cosine import tfidf_cosine
        hard = tfidf_cosine(CORPUS, "paul johnson", "pual johson")
        soft = SoftTfIdf(CORPUS)("paul johnson", "pual johson")
        assert hard == 0.0  # no exact token overlap at all
        assert soft > 0.5

    def test_theta_floor_blocks_weak_matches(self):
        strict = SoftTfIdf(CORPUS, theta=0.99)
        lenient = SoftTfIdf(CORPUS, theta=0.8)
        assert strict("johnson", "johson") <= lenient("johnson", "johson")

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            SoftTfIdf(CORPUS, theta=0.0)

    def test_empty_texts(self, scorer):
        assert scorer("", "") == 1.0
        assert scorer("paul", "") == 0.0

    def test_symmetric(self, scorer):
        a, b = "paul johnson learning", "johnson paul databases"
        assert scorer(a, b) == pytest.approx(scorer(b, a))

    def test_range(self, scorer):
        for a in CORPUS:
            for b in CORPUS:
                assert 0.0 <= scorer(a, b) <= 1.0

    def test_integrates_with_similarity_function(self):
        from repro.datasets.schema import Record
        from repro.similarity.composite import SimilarityFunction
        scorer = SoftTfIdf(CORPUS)
        function = SimilarityFunction("soft_tfidf", scorer)
        score = function(Record(0, "paul johnson"), Record(1, "paul johson"))
        assert score > 0.5
