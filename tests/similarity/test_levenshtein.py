"""Tests for repro.similarity.levenshtein."""

from repro.similarity.levenshtein import (
    damerau_distance,
    levenshtein_distance,
    levenshtein_similarity,
)


class TestLevenshteinDistance:
    def test_identical(self):
        assert levenshtein_distance("kitten", "kitten") == 0

    def test_classic_example(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_empty_vs_word(self):
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3

    def test_both_empty(self):
        assert levenshtein_distance("", "") == 0

    def test_single_substitution(self):
        assert levenshtein_distance("cat", "bat") == 1

    def test_single_insertion(self):
        assert levenshtein_distance("cat", "cart") == 1

    def test_symmetry(self):
        assert levenshtein_distance("abcde", "xbcdz") == levenshtein_distance(
            "xbcdz", "abcde"
        )


class TestLevenshteinSimilarity:
    def test_identical_is_one(self):
        assert levenshtein_similarity("same", "same") == 1.0

    def test_empty_pair_is_one(self):
        assert levenshtein_similarity("", "") == 1.0

    def test_completely_different_is_zero(self):
        assert levenshtein_similarity("aaa", "zzz") == 0.0

    def test_range(self):
        assert 0.0 < levenshtein_similarity("chevy", "chevrolet") < 1.0


class TestDamerau:
    def test_transposition_counts_one(self):
        assert damerau_distance("ab", "ba") == 1
        assert levenshtein_distance("ab", "ba") == 2

    def test_never_exceeds_levenshtein(self):
        for a, b in [("abcd", "acbd"), ("hello", "ehllo"), ("x", "xy")]:
            assert damerau_distance(a, b) <= levenshtein_distance(a, b)

    def test_empty_cases(self):
        assert damerau_distance("", "ab") == 2
        assert damerau_distance("ab", "") == 2
