"""Property-based tests for the similarity metrics (hypothesis)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.jaccard import qgram_jaccard, token_jaccard
from repro.similarity.jaro import jaro_similarity, jaro_winkler_similarity
from repro.similarity.levenshtein import (
    levenshtein_distance,
    levenshtein_similarity,
)

words = st.text(alphabet=string.ascii_lowercase + " ", max_size=30)
tokens = st.text(alphabet=string.ascii_lowercase, max_size=15)


@given(words, words)
def test_token_jaccard_symmetric(a, b):
    assert token_jaccard(a, b) == token_jaccard(b, a)


@given(words)
def test_token_jaccard_identity(a):
    assert token_jaccard(a, a) == 1.0


@given(words, words)
def test_token_jaccard_range(a, b):
    assert 0.0 <= token_jaccard(a, b) <= 1.0


@given(words, words)
def test_qgram_jaccard_range(a, b):
    assert 0.0 <= qgram_jaccard(a, b) <= 1.0


@given(tokens, tokens)
def test_levenshtein_symmetric(a, b):
    assert levenshtein_distance(a, b) == levenshtein_distance(b, a)


@given(tokens)
def test_levenshtein_identity(a):
    assert levenshtein_distance(a, a) == 0


@given(tokens, tokens)
def test_levenshtein_bounded_by_longest(a, b):
    assert levenshtein_distance(a, b) <= max(len(a), len(b))


@given(tokens, tokens, tokens)
@settings(max_examples=50)
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein_distance(a, c) <= (
        levenshtein_distance(a, b) + levenshtein_distance(b, c)
    )


@given(tokens, tokens)
def test_levenshtein_similarity_range(a, b):
    assert 0.0 <= levenshtein_similarity(a, b) <= 1.0


@given(tokens, tokens)
def test_jaro_symmetric(a, b):
    assert jaro_similarity(a, b) == jaro_similarity(b, a)


@given(tokens, tokens)
def test_jaro_range(a, b):
    assert 0.0 <= jaro_similarity(a, b) <= 1.0


@given(tokens, tokens)
def test_jaro_winkler_at_least_jaro(a, b):
    assert jaro_winkler_similarity(a, b) >= jaro_similarity(a, b) - 1e-12


@given(tokens, tokens)
def test_jaro_winkler_range(a, b):
    assert 0.0 <= jaro_winkler_similarity(a, b) <= 1.0 + 1e-12
