"""Tests for repro.similarity.cosine."""

import math

import pytest

from repro.similarity.cosine import TfIdfVectorizer, sparse_cosine, tfidf_cosine


class TestTfIdfVectorizer:
    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfIdfVectorizer().transform("hello")

    def test_vector_is_normalized(self):
        vectorizer = TfIdfVectorizer().fit(["a b c", "a b", "c d"])
        vector = vectorizer.transform("a b c d")
        norm = math.sqrt(sum(w * w for w in vector.values()))
        assert norm == pytest.approx(1.0)

    def test_rare_token_weighs_more(self):
        vectorizer = TfIdfVectorizer().fit(
            ["common rare", "common x", "common y", "common z"]
        )
        vector = vectorizer.transform("common rare")
        assert vector["rare"] > vector["common"]

    def test_empty_text_gives_empty_vector(self):
        vectorizer = TfIdfVectorizer().fit(["a b"])
        assert vectorizer.transform("") == {}

    def test_vocabulary_size(self):
        vectorizer = TfIdfVectorizer().fit(["a b", "b c"])
        assert vectorizer.vocabulary_size == 3


class TestSparseCosine:
    def test_identical_normalized_vectors(self):
        vectorizer = TfIdfVectorizer().fit(["x y z", "p q"])
        vector = vectorizer.transform("x y z")
        assert sparse_cosine(vector, vector) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert sparse_cosine({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_empty_vector(self):
        assert sparse_cosine({}, {"a": 1.0}) == 0.0


class TestTfIdfCosine:
    def test_self_similarity(self):
        corpus = ["golden cafe", "blue grill", "golden grill"]
        assert tfidf_cosine(corpus, "golden cafe", "golden cafe") == pytest.approx(1.0)

    def test_partial_overlap_between_zero_and_one(self):
        corpus = ["golden cafe", "blue grill", "golden grill"]
        score = tfidf_cosine(corpus, "golden cafe", "golden grill")
        assert 0.0 < score < 1.0

    def test_disjoint_is_zero(self):
        corpus = ["a b", "c d"]
        assert tfidf_cosine(corpus, "a b", "c d") == 0.0
