"""Tests for repro.similarity.composite."""

import pytest

from repro.datasets.schema import Record
from repro.similarity.composite import (
    SimilarityFunction,
    jaccard_similarity_function,
    jaro_winkler_similarity_function,
    levenshtein_similarity_function,
    qgram_similarity_function,
    weighted_similarity_function,
)


def rec(record_id, text):
    return Record(record_id=record_id, text=text)


class TestSimilarityFunction:
    def test_caches_pairs(self):
        calls = []

        def counting(a, b):
            calls.append((a, b))
            return 0.5

        function = SimilarityFunction("counting", counting)
        a, b = rec(1, "x"), rec(2, "y")
        function(a, b)
        function(a, b)
        function(b, a)  # symmetric call hits the same cache slot
        assert len(calls) == 1
        assert function.cache_size() == 1

    def test_clamps_to_unit_interval(self):
        function = SimilarityFunction("bad", lambda a, b: 1.7)
        assert function(rec(1, "x"), rec(2, "y")) == 1.0
        function = SimilarityFunction("bad", lambda a, b: -0.3)
        assert function(rec(3, "x"), rec(4, "y")) == 0.0

    def test_same_record_pair_rejected(self):
        function = jaccard_similarity_function()
        record = rec(1, "x")
        with pytest.raises(ValueError):
            function(record, record)


class TestFactories:
    def test_jaccard_factory(self):
        function = jaccard_similarity_function()
        assert function(rec(1, "a b"), rec(2, "a b")) == 1.0

    def test_qgram_factory(self):
        function = qgram_similarity_function(q=2)
        assert function(rec(1, "abc"), rec(2, "abc")) == 1.0

    def test_levenshtein_factory(self):
        function = levenshtein_similarity_function()
        assert function(rec(1, "cat"), rec(2, "bat")) == pytest.approx(2 / 3)

    def test_jaro_winkler_factory(self):
        function = jaro_winkler_similarity_function()
        assert function(rec(1, "same"), rec(2, "same")) == 1.0


class TestWeighted:
    def test_combination(self):
        half = weighted_similarity_function(
            [(lambda a, b: 1.0, 1.0), (lambda a, b: 0.0, 1.0)]
        )
        assert half(rec(1, "x"), rec(2, "y")) == 0.5

    def test_weights_normalized(self):
        function = weighted_similarity_function(
            [(lambda a, b: 1.0, 3.0), (lambda a, b: 0.0, 1.0)]
        )
        assert function(rec(1, "x"), rec(2, "y")) == 0.75

    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            weighted_similarity_function([])

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_similarity_function([(lambda a, b: 1.0, 0.0)])
