"""Tests for repro.similarity.tokenize."""

import pytest

from repro.similarity.tokenize import (
    ngram_shingles,
    normalize,
    qgram_set,
    qgrams,
    token_set,
    word_tokens,
)


class TestNormalize:
    def test_lowercases(self):
        assert normalize("HeLLo") == "hello"

    def test_collapses_whitespace(self):
        assert normalize("  a \t b \n c ") == "a b c"

    def test_empty(self):
        assert normalize("") == ""


class TestWordTokens:
    def test_splits_on_punctuation(self):
        assert word_tokens("Chevrolet, Chevy & Chevron!") == [
            "chevrolet", "chevy", "chevron"
        ]

    def test_keeps_digits(self):
        assert word_tokens("model x200 v2") == ["model", "x200", "v2"]

    def test_empty_string(self):
        assert word_tokens("") == []

    def test_only_punctuation(self):
        assert word_tokens("!!! ---") == []


class TestTokenSet:
    def test_drops_duplicates(self):
        assert token_set("a b a b c") == frozenset({"a", "b", "c"})

    def test_is_frozenset(self):
        assert isinstance(token_set("x"), frozenset)


class TestQgrams:
    def test_unpadded_exact(self):
        assert qgrams("abc", q=2, pad=False) == ["ab", "bc"]

    def test_short_string_unpadded(self):
        assert qgrams("a", q=3, pad=False) == ["a"]

    def test_empty_string(self):
        assert qgrams("", q=3) == []

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", q=0)

    def test_count_matches_length(self):
        grams = qgrams("abcdef", q=3, pad=False)
        assert len(grams) == len("abcdef") - 3 + 1

    def test_qgram_set_type(self):
        assert isinstance(qgram_set("abc"), frozenset)


class TestShingles:
    def test_bigrams(self):
        assert ngram_shingles(["a", "b", "c"], n=2) == [("a", "b"), ("b", "c")]

    def test_short_input(self):
        assert ngram_shingles(["a"], n=2) == [("a",)]

    def test_empty_input(self):
        assert ngram_shingles([], n=2) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngram_shingles(["a"], n=0)
