"""Smoke tests: the fast example scripts must run and print what they
promise (the slow ones are exercised manually / in CI's example target)."""

import runpy
import sys

import pytest


def run_example(name, capsys, argv=None):
    old_argv = sys.argv
    sys.argv = [f"examples/{name}"] + (argv or [])
    try:
        runpy.run_path(f"examples/{name}", run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestFastExamples:
    def test_paper_walkthrough(self, capsys):
        out = run_example("paper_walkthrough.py", capsys)
        assert "2.85" in out                  # Example 1's optimum
        assert "[0, 2]" in out                # Figure 2 case 3 bound
        assert "['abc', 'def']" in out        # Example 3's final clusters

    def test_brand_disambiguation(self, capsys):
        out = run_example("brand_disambiguation.py", capsys)
        assert "['chevrolet', 'chevy']" in out
        assert "['chevron']" in out
        # Figure 1: TransM collapses, ACD resists.
        assert "['a1', 'a2', 'a3', 'b1', 'b2', 'b3']" in out
        assert "['a1', 'a2', 'a3']" in out

    def test_custom_dataset(self, capsys):
        out = run_example("custom_dataset.py", capsys)
        assert "F1 against gold" in out
        assert "recovered clusters" in out

    def test_structured_records(self, capsys):
        out = run_example("structured_records.py", capsys)
        assert "chez panisse" in out
        assert "ACD F1" in out

    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "ACD results" in out
        assert "pairs crowdsourced" in out

    def test_answer_file_replay(self, capsys):
        out = run_example("answer_file_replay.py", capsys)
        assert "replay check: identical clusterings" in out
