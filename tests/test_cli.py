"""Tests for the repro CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.command == "datasets"
        assert args.scale == 0.3

    def test_compare_arguments(self):
        args = build_parser().parse_args(
            ["compare", "paper", "--setting", "5w", "--scale", "0.1"]
        )
        assert args.dataset == "paper"
        assert args.setting == "5w"
        assert args.scale == 0.1

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "imaginary"])

    def test_run_method_choice(self):
        args = build_parser().parse_args(
            ["run", "product", "--method", "TransM"]
        )
        assert args.method == "TransM"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "product", "--method", "Nope"])


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out
        assert "error 3w" in out

    def test_run_command(self, capsys):
        assert main(["run", "restaurant", "--scale", "0.05",
                     "--method", "TransM"]) == 0
        out = capsys.readouterr().out
        assert "TransM" in out
        assert "F1" in out

    def test_run_gcer_autobudgets(self, capsys):
        assert main(["run", "restaurant", "--scale", "0.05",
                     "--method", "GCER"]) == 0
        assert "GCER" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        assert main(["compare", "restaurant", "--scale", "0.05",
                     "--repetitions", "1"]) == 0
        out = capsys.readouterr().out
        assert "ACD" in out and "CrowdER+" in out

    def test_sweep_epsilon_command(self, capsys):
        assert main(["sweep-epsilon", "restaurant", "--scale", "0.05",
                     "--repetitions", "1"]) == 0
        assert "Crowd-Pivot" in capsys.readouterr().out

    def test_sweep_threshold_command(self, capsys):
        assert main(["sweep-threshold", "restaurant", "--scale", "0.05",
                     "--repetitions", "1"]) == 0
        assert "N_m/" in capsys.readouterr().out
