"""Tests for the repro CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.command == "datasets"
        assert args.scale == 0.3

    def test_compare_arguments(self):
        args = build_parser().parse_args(
            ["compare", "paper", "--setting", "5w", "--scale", "0.1"]
        )
        assert args.dataset == "paper"
        assert args.setting == "5w"
        assert args.scale == 0.1

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "imaginary"])

    def test_run_method_choice(self):
        args = build_parser().parse_args(
            ["run", "product", "--method", "TransM"]
        )
        assert args.method == "TransM"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "product", "--method", "Nope"])


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out
        assert "error 3w" in out

    def test_run_command(self, capsys):
        assert main(["run", "restaurant", "--scale", "0.05",
                     "--method", "TransM"]) == 0
        out = capsys.readouterr().out
        assert "TransM" in out
        assert "F1" in out

    def test_run_gcer_autobudgets(self, capsys):
        assert main(["run", "restaurant", "--scale", "0.05",
                     "--method", "GCER"]) == 0
        assert "GCER" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        assert main(["compare", "restaurant", "--scale", "0.05",
                     "--repetitions", "1"]) == 0
        out = capsys.readouterr().out
        assert "ACD" in out and "CrowdER+" in out

    def test_sweep_epsilon_command(self, capsys):
        assert main(["sweep-epsilon", "restaurant", "--scale", "0.05",
                     "--repetitions", "1"]) == 0
        assert "Crowd-Pivot" in capsys.readouterr().out

    def test_sweep_threshold_command(self, capsys):
        assert main(["sweep-threshold", "restaurant", "--scale", "0.05",
                     "--repetitions", "1"]) == 0
        assert "N_m/" in capsys.readouterr().out


class TestTraceAndManifest:
    def test_run_with_trace_writes_trace_and_manifest(self, capsys, tmp_path):
        from repro.obs import load_manifest, read_events, summarize_trace
        trace = tmp_path / "run.trace.jsonl"
        assert main(["run", "restaurant", "--scale", "0.05",
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert f"trace: {trace}" in out

        span_names = {record["name"] for record in read_events(trace)
                      if record["type"] == "span"}
        assert {"pruning", "acd", "generation", "refinement"} <= span_names
        summary = summarize_trace(trace)
        assert summary["crowd_rounds"]

        manifest = load_manifest(tmp_path / "run.trace.manifest.json")
        assert manifest["command"] == "run"
        assert manifest["config"]["dataset"] == "restaurant"
        assert manifest["dataset"]["name"] == "restaurant"
        assert manifest["result"]["method"] == "ACD"
        assert (manifest["stats"]["pairs_issued"]
                == manifest["result"]["pairs_issued"])

    def test_trace_summarize_and_validate_commands(self, capsys, tmp_path):
        trace = tmp_path / "run.trace.jsonl"
        assert main(["run", "restaurant", "--scale", "0.05",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "trace records:" in out
        assert "crowd rounds:" in out
        assert main(["trace", "validate",
                     str(tmp_path / "run.trace.manifest.json")]) == 0
        assert "valid" in capsys.readouterr().out

    def test_trace_validate_rejects_invalid(self, capsys, tmp_path):
        bad = tmp_path / "bad.manifest.json"
        bad.write_text("{}")
        with pytest.raises(SystemExit, match="manifest"):
            main(["trace", "validate", str(bad)])

    def test_output_json(self, capsys, tmp_path):
        import json
        output = tmp_path / "result.json"
        assert main(["run", "restaurant", "--scale", "0.05",
                     "--method", "TransM", "--output", str(output)]) == 0
        payload = json.loads(output.read_text())
        assert payload["config"]["method"] == "TransM"
        assert 0.0 <= payload["result"]["f1"] <= 1.0


class TestRunFlagValidation:
    """The fail-fast guards: every bad flag combination must die with a
    clear message before any crowd work starts (not argparse's exit 2)."""

    def test_resume_requires_journal(self):
        with pytest.raises(SystemExit,
                           match=r"--resume requires --journal"):
            main(["run", "restaurant", "--scale", "0.05", "--resume"])

    def test_manifest_requires_trace(self, tmp_path):
        with pytest.raises(SystemExit,
                           match=r"--manifest requires --trace"):
            main(["run", "restaurant", "--scale", "0.05",
                  "--manifest", str(tmp_path / "m.json")])

    def test_journal_and_trace_collision(self, tmp_path):
        shared = tmp_path / "artifact.jsonl"
        with pytest.raises(SystemExit, match="same file"):
            main(["run", "restaurant", "--scale", "0.05",
                  "--journal", str(shared), "--trace", str(shared)])

    def test_trace_and_output_collision(self, tmp_path):
        shared = tmp_path / "artifact.json"
        with pytest.raises(SystemExit, match="same file"):
            main(["run", "restaurant", "--scale", "0.05",
                  "--trace", str(shared), "--output", str(shared)])

    def test_journal_config_mismatch_exits_cleanly(self, capsys, tmp_path):
        journal = tmp_path / "run.wal"
        assert main(["run", "restaurant", "--scale", "0.05",
                     "--journal", str(journal)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit,
                           match="different run configuration"):
            main(["run", "restaurant", "--scale", "0.1",
                  "--journal", str(journal), "--resume"])

    def test_journal_resume_same_config_succeeds(self, capsys, tmp_path):
        journal = tmp_path / "run.wal"
        assert main(["run", "restaurant", "--scale", "0.05",
                     "--journal", str(journal)]) == 0
        first = capsys.readouterr().out
        assert main(["run", "restaurant", "--scale", "0.05",
                     "--journal", str(journal), "--resume"]) == 0
        second = capsys.readouterr().out
        assert "resuming from" in second
        # Replay is deterministic: the resumed run reports the same F1.
        f1 = [line for line in first.splitlines() if "F1" in line]
        assert f1 and f1[0] in second


class TestCheckpointCli:
    def test_checkpoint_dir_writes_phase_snapshots(self, capsys, tmp_path):
        checkpoint_dir = tmp_path / "ck"
        assert main(["run", "restaurant", "--scale", "0.05",
                     "--checkpoint-dir", str(checkpoint_dir)]) == 0
        assert (checkpoint_dir / "pruning.checkpoint.json").exists()
        assert (checkpoint_dir / "generation.checkpoint.json").exists()

    def test_resume_from_checkpoints_matches(self, capsys, tmp_path):
        checkpoint_dir = tmp_path / "ck"
        assert main(["run", "restaurant", "--scale", "0.05",
                     "--checkpoint-dir", str(checkpoint_dir)]) == 0
        first = capsys.readouterr().out
        assert main(["run", "restaurant", "--scale", "0.05",
                     "--checkpoint-dir", str(checkpoint_dir),
                     "--resume"]) == 0
        second = capsys.readouterr().out
        assert "pruning not re-executed" in second
        # Phase restoration is byte-identical: same F1 line.
        f1 = [line for line in first.splitlines() if "F1" in line]
        assert f1 and f1[0] in second

    def test_resume_accepts_checkpoint_dir_without_journal(self, capsys,
                                                           tmp_path):
        # --resume on an empty checkpoint directory is a cold start, not
        # an error: nothing to restore, everything runs.
        assert main(["run", "restaurant", "--scale", "0.05",
                     "--checkpoint-dir", str(tmp_path / "empty"),
                     "--resume"]) == 0

    def test_checkpoint_config_mismatch_exits_cleanly(self, capsys,
                                                      tmp_path):
        checkpoint_dir = tmp_path / "ck"
        assert main(["run", "restaurant", "--scale", "0.05",
                     "--checkpoint-dir", str(checkpoint_dir)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit,
                           match="different run configuration"):
            main(["run", "restaurant", "--scale", "0.1",
                  "--checkpoint-dir", str(checkpoint_dir), "--resume"])
