"""Tests for repro.core.operations (Sections 5.1-5.2)."""

import pytest

from repro.core.clustering import Clustering
from repro.core.estimator import HistogramEstimator
from repro.core.operations import (
    Merge,
    OperationEvaluator,
    Split,
    apply_operation,
    independent,
)
from tests.conftest import make_candidates, scripted_oracle


class TestOperationTypes:
    def test_merge_self_rejected(self):
        with pytest.raises(ValueError):
            Merge(1, 1)

    def test_touched_clusters(self):
        assert Split(5, 2).touched_clusters == (2,)
        assert Merge(1, 3).touched_clusters == (1, 3)

    def test_independence(self):
        assert independent(Split(0, 1), Merge(2, 3))
        assert not independent(Split(0, 1), Merge(1, 3))
        assert not independent(Merge(1, 2), Merge(2, 3))
        assert independent(Split(0, 1), Split(5, 2))
        assert not independent(Split(0, 1), Split(5, 1))

    def test_apply_split(self):
        clustering = Clustering([{0, 1, 2}])
        apply_operation(clustering, Split(0, clustering.cluster_of(0)))
        assert not clustering.together(0, 1)

    def test_apply_merge(self):
        clustering = Clustering([{0}, {1}])
        apply_operation(
            clustering, Merge(clustering.cluster_of(0), clustering.cluster_of(1))
        )
        assert clustering.together(0, 1)

    def test_apply_unknown_type(self):
        with pytest.raises(TypeError):
            apply_operation(Clustering([{0}]), "not an operation")


@pytest.fixture
def setup():
    """Cluster {0,1,2} and {3,4}; candidate pairs with partial knowledge."""
    clustering = Clustering([{0, 1, 2}, {3, 4}])
    candidates = make_candidates({
        (0, 1): 0.8, (0, 2): 0.7, (1, 2): 0.6,
        (2, 3): 0.55, (0, 3): 0.5, (3, 4): 0.9,
    })
    oracle = scripted_oracle(
        {(0, 1): 0.9, (0, 2): 0.8, (1, 2): 0.2, (2, 3): 0.7,
         (0, 3): 0.4, (3, 4): 1.0},
    )
    # Pre-answer a subset: (0,1) and (3,4) are in A.
    oracle.ask_batch([(0, 1), (3, 4)])
    estimator = HistogramEstimator()
    estimator.add_sample((0, 1), 0.8, 0.9)
    estimator.add_sample((3, 4), 0.9, 1.0)
    evaluator = OperationEvaluator(clustering, candidates, oracle, estimator)
    return clustering, candidates, oracle, evaluator


class TestRelevantPairs:
    def test_split_pairs(self, setup):
        clustering, _, _, evaluator = setup
        operation = Split(0, clustering.cluster_of(0))
        assert evaluator.relevant_pairs(operation) == [(0, 1), (0, 2)]

    def test_merge_pairs_cross_product(self, setup):
        clustering, _, _, evaluator = setup
        operation = Merge(clustering.cluster_of(0), clustering.cluster_of(3))
        assert sorted(evaluator.relevant_pairs(operation)) == [
            (0, 3), (0, 4), (1, 3), (1, 4), (2, 3), (2, 4),
        ]


class TestKnownConfidence:
    def test_answered_pair(self, setup):
        _, _, _, evaluator = setup
        assert evaluator.known_confidence((0, 1)) == 0.9

    def test_pruned_pair_is_zero(self, setup):
        _, _, _, evaluator = setup
        # (1, 3) is not in the candidate set -> f_c = 0 by definition.
        assert evaluator.known_confidence((1, 3)) == 0.0

    def test_unanswered_candidate_is_unknown(self, setup):
        _, _, _, evaluator = setup
        assert evaluator.known_confidence((0, 2)) is None


class TestCostAndBenefit:
    def test_cost_counts_unknown_candidate_pairs(self, setup):
        clustering, _, _, evaluator = setup
        # Split 0 from {0,1,2}: (0,1) known, (0,2) unknown -> cost 1.
        assert evaluator.cost(Split(0, clustering.cluster_of(0))) == 1

    def test_merge_cost(self, setup):
        clustering, _, _, evaluator = setup
        operation = Merge(clustering.cluster_of(0), clustering.cluster_of(3))
        # Unknown candidates among cross pairs: (2,3) and (0,3); the rest are
        # pruned (known 0).
        assert evaluator.cost(operation) == 2

    def test_exact_benefit_none_when_pairs_unknown(self, setup):
        clustering, _, _, evaluator = setup
        assert evaluator.exact_benefit(Split(0, clustering.cluster_of(0))) is None

    def test_exact_benefit_when_all_known(self, setup):
        clustering, _, oracle, evaluator = setup
        oracle.ask_batch([(0, 2)])
        benefit = evaluator.exact_benefit(Split(0, clustering.cluster_of(0)))
        # fc(0,1)=0.9, fc(0,2)=0.8: (1-1.8) + (1-1.6) = -1.4
        assert benefit == pytest.approx(-1.4)

    def test_exact_benefit_uses_pruned_zero(self, setup):
        clustering, _, oracle, evaluator = setup
        # Split 4 from {3,4}: only pair (3,4), known 1.0 -> benefit -1.
        assert evaluator.exact_benefit(
            Split(4, clustering.cluster_of(4))
        ) == pytest.approx(-1.0)

    def test_estimated_benefit_mixes_known_and_estimated(self, setup):
        clustering, _, _, evaluator = setup
        operation = Split(0, clustering.cluster_of(0))
        # Known: fc(0,1)=0.9 -> term -0.8.  Unknown (0,2): histogram over
        # samples {(0.8,0.9),(0.9,1.0)} has a single low bucket for f=0.7.
        estimate = evaluator.estimated_benefit(operation)
        assert estimate < 0  # both terms are clearly negative

    def test_benefit_cost_ratio(self, setup):
        clustering, _, _, evaluator = setup
        operation = Split(0, clustering.cluster_of(0))
        ratio = evaluator.benefit_cost_ratio(operation)
        assert ratio == pytest.approx(evaluator.estimated_benefit(operation) / 1)

    def test_ratio_for_zero_cost_is_the_exact_benefit(self, setup):
        # A zero-cost operation is free, not infinitely attractive: its
        # ranking key is its (exact) benefit.  This used to raise ValueError,
        # which made the ratio a partial function external callers had to
        # guard themselves.
        clustering, _, _, evaluator = setup
        operation = Split(4, clustering.cluster_of(4))
        assert evaluator.cost(operation) == 0
        ratio = evaluator.benefit_cost_ratio(operation)
        assert ratio == pytest.approx(evaluator.estimated_benefit(operation))
        assert ratio == pytest.approx(evaluator.exact_benefit(operation))

    def test_unknown_pairs_listing(self, setup):
        clustering, _, _, evaluator = setup
        operation = Merge(clustering.cluster_of(0), clustering.cluster_of(3))
        assert sorted(evaluator.unknown_pairs(operation)) == [(0, 3), (2, 3)]
