"""Sharded PC-Refine: cross-configuration byte-identity and wiring.

The identity contract (see ``repro/core/refine_shard.py``): every
``{shards, processes}`` configuration of the sharded engine produces a
byte-identical clustering, crowd-stats, and diagnostics — the shard
layout is a pure execution detail.  Parity with the *classic* fast
engine is empirical, not guaranteed; it holds on the paper's three
datasets and is asserted for them here.
"""

import tempfile
from pathlib import Path

import pytest

from repro.core.acd import run_acd
from repro.core.pc_pivot import pc_pivot
from repro.core.pc_refine import PCRefineDiagnostics, pc_refine
from repro.crowd.oracle import CrowdOracle
from repro.experiments.runner import prepare_instance
from repro.runtime.checkpoint import CheckpointStore

SEED = 3


def _instance(name="largescale", scale=0.2, seed=0, **kwargs):
    return prepare_instance(name, "3w", scale=scale, seed=seed, **kwargs)


def _refined(instance, shards=0, processes=0, seed=SEED):
    oracle = CrowdOracle(instance.answers)
    clustering = pc_pivot(instance.record_ids, instance.candidates, oracle,
                          seed=seed)
    diagnostics = PCRefineDiagnostics()
    clustering = pc_refine(
        clustering, instance.candidates, oracle,
        num_records=len(instance.record_ids), diagnostics=diagnostics,
        shards=shards, processes=processes,
    )
    return {
        "clustering": clustering.to_state(),
        "stats": oracle.stats.snapshot(),
        "batches": list(oracle.stats.batch_sizes),
        "rounds": diagnostics.rounds,
        "batch_sizes": diagnostics.batch_sizes,
        "packed": diagnostics.operations_packed,
        "applied": diagnostics.operations_applied,
        "free": diagnostics.free_operations_applied,
        "evaluations": diagnostics.operation_evaluations,
        "cache": diagnostics.evaluation_cache,
    }


class TestCrossConfigIdentity:
    def test_every_shard_count_is_byte_identical(self):
        reference = _refined(_instance(), shards=1)
        for shards in (2, 5, 9, 64):
            assert _refined(_instance(), shards=shards) == reference, shards

    def test_identity_survives_a_confused_population(self):
        # The confusion knob gives refinement real over/under-merge work
        # (multi-round components), so this exercises packed rounds and
        # the histogram-evolution path, not just the free pass.
        from repro.crowd.cache import AnswerFile
        from repro.crowd.worker import WorkerPool
        from repro.datasets.registry import generate
        from repro.experiments.configs import (
            PRUNING_THRESHOLD,
            difficulty_model,
        )
        from repro.pruning.candidate import build_candidate_set
        from repro.similarity.composite import jaccard_similarity_function

        dataset = generate("largescale", scale=0.3, seed=0, confusion=0.25)
        candidates = build_candidate_set(
            dataset.records, jaccard_similarity_function(),
            threshold=PRUNING_THRESHOLD,
        )
        workers = WorkerPool(difficulty=difficulty_model("largescale"),
                             num_workers=3)

        def run(shards):
            oracle = CrowdOracle(AnswerFile(dataset.gold, workers))
            clustering = pc_pivot(dataset.record_ids, candidates, oracle,
                                  seed=SEED)
            diagnostics = PCRefineDiagnostics()
            clustering = pc_refine(
                clustering, candidates, oracle,
                num_records=len(dataset.records), diagnostics=diagnostics,
                shards=shards,
            )
            return (clustering.to_state(), oracle.stats.snapshot(),
                    diagnostics.rounds, diagnostics.batch_sizes,
                    diagnostics.operations_applied)

        reference = run(1)
        assert reference[2] >= 1
        for shards in (3, 8):
            assert run(shards) == reference, shards

    def test_sharded_ids_are_canonical(self):
        state = _refined(_instance(), shards=4)["clustering"]
        clusters = sorted(state["clusters"], key=lambda entry: entry[0])
        ids = [cid for cid, _ in clusters]
        assert ids == list(range(len(ids)))
        smallest = [min(members) for _, members in clusters]
        assert smallest == sorted(smallest)
        assert state["next_id"] == len(ids)


class TestClassicParity:
    @pytest.mark.parametrize("name,scale", [
        ("paper", 0.3), ("restaurant", 0.5), ("product", 0.15),
    ])
    def test_sharded_matches_classic_on_paper_datasets(self, name, scale):
        classic = _refined(_instance(name, scale=scale))
        sharded = _refined(_instance(name, scale=scale), shards=4)
        assert sharded["clustering"] == classic["clustering"]
        assert sharded["stats"] == classic["stats"]


class TestValidation:
    def _setup(self, **kwargs):
        instance = _instance(scale=0.05)
        oracle = CrowdOracle(instance.answers)
        clustering = pc_pivot(instance.record_ids, instance.candidates,
                              oracle, seed=SEED)
        return clustering, instance.candidates, oracle, instance

    def test_negative_shards_rejected(self):
        clustering, candidates, oracle, instance = self._setup()
        with pytest.raises(ValueError, match="shards must be >= 0"):
            pc_refine(clustering, candidates, oracle,
                      num_records=len(instance.record_ids), shards=-1)

    def test_processes_without_shards_rejected(self):
        clustering, candidates, oracle, instance = self._setup()
        with pytest.raises(ValueError, match="require refine shards"):
            pc_refine(clustering, candidates, oracle,
                      num_records=len(instance.record_ids), processes=2)

    def test_reference_engine_rejected(self):
        clustering, candidates, oracle, instance = self._setup()
        with pytest.raises(ValueError, match="'fast' engine"):
            pc_refine(clustering, candidates, oracle,
                      num_records=len(instance.record_ids), shards=2,
                      engine="reference")

    def test_max_refinement_pairs_rejected(self):
        clustering, candidates, oracle, instance = self._setup()
        with pytest.raises(ValueError, match="max_refinement_pairs"):
            pc_refine(clustering, candidates, oracle,
                      num_records=len(instance.record_ids), shards=2,
                      max_refinement_pairs=50)

    def test_non_pair_deterministic_source_rejected(self):
        clustering, candidates, oracle, instance = self._setup()

        class Opaque:
            num_workers = 3

            def confidence(self, a, b):  # pragma: no cover - never reached
                return 1.0

        with pytest.raises(ValueError, match="pair-deterministic"):
            pc_refine(clustering, candidates, CrowdOracle(Opaque()),
                      num_records=len(instance.record_ids), shards=2)


class TestRunAcdWiring:
    def test_sharded_run_acd_matches_classic(self):
        def acd(refine_shards=0):
            instance = _instance(scale=0.1)
            return run_acd(instance.record_ids, instance.candidates,
                           instance.answers, seed=7, parallel=True,
                           refine_shards=refine_shards)

        classic = acd()
        sharded = acd(refine_shards=4)
        assert (sharded.clustering.to_state()
                == classic.clustering.to_state())
        assert sharded.stats.snapshot() == classic.stats.snapshot()
        assert sharded.refinement_stats == classic.refinement_stats

    def test_refine_shards_require_parallel(self):
        instance = _instance(scale=0.05)
        with pytest.raises(ValueError, match="parallel=True"):
            run_acd(instance.record_ids, instance.candidates,
                    instance.answers, seed=7, parallel=False,
                    refine_shards=2)

    def test_refine_shards_reject_reference_engine(self):
        instance = _instance(scale=0.05)
        with pytest.raises(ValueError, match="'fast' engine"):
            run_acd(instance.record_ids, instance.candidates,
                    instance.answers, seed=7, parallel=True,
                    refine_shards=2, refine_engine="reference")

    def test_refine_shards_reject_pair_cap(self):
        instance = _instance(scale=0.05)
        with pytest.raises(ValueError, match="max_refinement_pairs"):
            run_acd(instance.record_ids, instance.candidates,
                    instance.answers, seed=7, parallel=True,
                    refine_shards=2, max_refinement_pairs=10)


class TestRefinementCheckpoint:
    def test_refinement_checkpoint_roundtrip_is_byte_identical(self):
        config = {"dataset": "largescale", "scale": 0.1, "seed": 0}

        def acd(instance, checkpoints=None, resume=False):
            return run_acd(instance.record_ids, instance.candidates,
                           instance.answers, seed=7, parallel=True,
                           refine_shards=3, checkpoints=checkpoints,
                           resume=resume)

        uninterrupted = acd(_instance(scale=0.1))
        with tempfile.TemporaryDirectory() as tmp:
            store = CheckpointStore(Path(tmp), config=config)
            acd(_instance(scale=0.1), checkpoints=store)
            assert store.load("refinement") is not None

            class Refusing:
                pair_deterministic = True
                num_workers = 3

                def confidence(self, a, b):
                    raise AssertionError(
                        f"restored refinement re-crowdsourced ({a}, {b})"
                    )

            resumed_store = CheckpointStore(Path(tmp), config=config)
            instance = _instance(scale=0.1)
            import dataclasses
            instance = dataclasses.replace(instance, answers=Refusing())
            resumed = acd(instance, checkpoints=resumed_store, resume=True)

        assert (resumed.clustering.to_state()
                == uninterrupted.clustering.to_state())
        assert resumed.stats.snapshot() == uninterrupted.stats.snapshot()
        assert resumed.stats.batch_sizes == uninterrupted.stats.batch_sizes
        assert str(resumed.refinement_stats) == str(
            uninterrupted.refinement_stats)


class TestCliWiring:
    def test_cli_exposes_refine_shard_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "restaurant", "--refine-shards", "4",
             "--refine-processes", "2"])
        assert args.refine_shards == 4
        assert args.refine_processes == 2

    def test_cli_defaults_keep_classic_path(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "restaurant"])
        assert args.refine_shards == 0
        assert args.refine_processes == 0
