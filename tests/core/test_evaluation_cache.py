"""The EvaluationCache must serve exactly the values a fresh
OperationEvaluator derives — across arbitrary interleavings of applied
operations, fresh crowd answers, and histogram samples — while
invalidating only the entries those deltas actually touched."""

import random as random_module

import pytest

from repro.core.clustering import Clustering
from repro.core.evaluation_cache import EvaluationCache
from repro.core.operations import Merge, OperationEvaluator, Split
from repro.core.refine import (
    ClusterVersionTracker,
    build_estimator,
    enumerate_operations,
)
from repro.crowd.cache import ScriptedAnswers
from repro.crowd.oracle import CrowdOracle
from tests.conftest import make_candidates


def random_cache_state(seed):
    """A random clustering over a random candidate graph with *partial*
    crowd knowledge, so both exact and estimated benefits have work."""
    rng = random_module.Random(seed)
    num_records = rng.randint(4, 16)
    machine = {}
    confidences = {}
    for i in range(num_records):
        for j in range(i + 1, num_records):
            if rng.random() < 0.45:
                machine[(i, j)] = round(rng.uniform(0.31, 0.95), 2)
                confidences[(i, j)] = rng.choice(
                    (0.0, 1 / 3, 0.5, 2 / 3, 1.0)
                )
    candidates = make_candidates(machine)
    oracle = CrowdOracle(ScriptedAnswers(confidences, num_workers=3))
    known = [pair for pair in candidates.pairs if rng.random() < 0.5]
    if known:
        oracle.ask_batch(known)
    records = list(range(num_records))
    rng.shuffle(records)
    clusters = []
    while records:
        take = min(len(records), rng.randint(1, 4))
        clusters.append(records[:take])
        records = records[take:]
    clustering = Clustering(clusters)
    estimator = build_estimator(candidates, oracle)
    return clustering, candidates, oracle, estimator


def assert_matches_evaluator(cache, evaluator, clustering, candidates):
    for operation in enumerate_operations(clustering, candidates):
        assert (cache.relevant_pairs(operation)
                == evaluator.relevant_pairs(operation))
        assert cache.cost(operation) == evaluator.cost(operation)
        assert (cache.unknown_pairs(operation)
                == evaluator.unknown_pairs(operation))
        # Benefits must be byte-identical, not approximately equal — the
        # refinement loops break ties on exact float comparisons.
        assert (cache.exact_benefit(operation)
                == evaluator.exact_benefit(operation))
        assert (cache.estimated_benefit(operation)
                == evaluator.estimated_benefit(operation))
        ratio, cost = cache.ratio_and_cost(operation)
        assert cost == evaluator.cost(operation)
        if cost > 0:
            assert ratio == evaluator.estimated_benefit(operation) / cost
        else:
            assert ratio is None


@pytest.mark.parametrize("seed", range(10))
def test_cache_matches_evaluator_across_deltas(seed):
    rng = random_module.Random(seed * 991 + 3)
    clustering, candidates, oracle, estimator = random_cache_state(seed)
    tracker = ClusterVersionTracker(clustering)
    cache = EvaluationCache(clustering, candidates, oracle, estimator,
                            tracker)
    evaluator = OperationEvaluator(clustering, candidates, oracle, estimator)

    for _ in range(10):
        assert_matches_evaluator(cache, evaluator, clustering, candidates)
        operations = enumerate_operations(clustering, candidates)
        unknown = [pair for pair in candidates.pairs
                   if not oracle.knows(*pair)]
        roll = rng.random()
        if roll < 0.4 and operations:
            tracker.apply(clustering, rng.choice(operations))
        elif roll < 0.7 and unknown:
            answers = oracle.ask_batch([rng.choice(unknown)])
            for pair, crowd_score in answers.items():
                estimator.add_sample(
                    pair, candidates.machine_scores[pair], crowd_score
                )
        elif candidates.pairs:
            pair = rng.choice(list(candidates.pairs))
            estimator.add_sample(pair, candidates.machine_scores[pair],
                                 rng.choice((0.0, 1 / 3, 2 / 3, 1.0)))


def small_state():
    """Three clusters, one known pair, two unknown pairs.

    Merge(c0, c1) needs unknown (1, 2); Merge(c1, c2) needs unknown (2, 3);
    Split(1, c0) needs only the known (0, 1).
    """
    clustering = Clustering()
    c0 = clustering.add_cluster([0, 1])
    c1 = clustering.add_cluster([2])
    c2 = clustering.add_cluster([3])
    candidates = make_candidates({(0, 1): 0.8, (1, 2): 0.6, (2, 3): 0.4})
    oracle = CrowdOracle(ScriptedAnswers(
        {(0, 1): 1.0, (1, 2): 0.0, (2, 3): 1.0}, num_workers=3
    ))
    oracle.ask_batch([(0, 1)])
    estimator = build_estimator(candidates, oracle)
    tracker = ClusterVersionTracker(clustering)
    cache = EvaluationCache(clustering, candidates, oracle, estimator,
                            tracker)
    return clustering, candidates, oracle, estimator, tracker, cache, (c0, c1, c2)


def test_cluster_change_forces_rebuild():
    clustering, candidates, oracle, estimator, tracker, cache, ids = small_state()
    c0, c1, _ = ids
    merge = Merge(c0, c1)
    assert cache.cost(merge) == 1
    assert cache.stats.evaluations == 1
    cache.cost(merge)
    assert cache.stats.hits == 1

    tracker.apply(clustering, Split(1, c0))  # c0 shrinks to {0}
    assert cache.cost(merge) == 0  # only the pruned (0, 2) remains relevant
    assert cache.stats.evaluations == 2
    evaluator = OperationEvaluator(clustering, candidates, oracle, estimator)
    assert cache.relevant_pairs(merge) == evaluator.relevant_pairs(merge)
    assert cache.exact_benefit(merge) == evaluator.exact_benefit(merge)


def test_answer_delta_refreshes_only_affected_entries():
    clustering, candidates, oracle, estimator, tracker, cache, ids = small_state()
    c0, c1, c2 = ids
    merge01 = Merge(c0, c1)
    merge12 = Merge(c1, c2)
    assert cache.cost(merge01) == 1
    assert cache.cost(merge12) == 1
    assert cache.drain_dirty_operations() == set()

    oracle.ask_batch([(1, 2)])
    assert cache.drain_dirty_operations() == {merge01}

    evaluations_before = cache.stats.evaluations
    assert cache.cost(merge01) == 0
    assert cache.exact_benefit(merge01) is not None
    assert cache.stats.evaluations == evaluations_before  # refresh, no rebuild
    assert cache.stats.refreshes >= 1

    hits_before = cache.stats.hits
    assert cache.cost(merge12) == 1  # untouched entry stays a pure hit
    assert cache.stats.hits == hits_before + 1


def test_estimate_delta_refreshes_estimated_values():
    clustering, candidates, oracle, estimator, tracker, cache, ids = small_state()
    c0, c1, _ = ids
    merge = Merge(c0, c1)
    before = cache.estimated_benefit(merge)

    # The histogram holds only (0.8 -> 1.0), so estimate(0.6) is 1.0; the
    # new sample splits the bucket and moves estimate(0.6) to 0.0.
    estimator.add_sample((7, 8), 0.7, 0.0)
    assert cache.drain_dirty_operations() == {merge}

    # Exact-only accessors ignore estimate staleness (still pure hits).
    hits_before = cache.stats.hits
    assert cache.cost(merge) == 1
    assert cache.stats.hits == hits_before + 1

    refreshes_before = cache.stats.refreshes
    after = cache.estimated_benefit(merge)
    assert cache.stats.refreshes == refreshes_before + 1
    assert after != before
    evaluator = OperationEvaluator(clustering, candidates, oracle, estimator)
    assert after == evaluator.estimated_benefit(merge)


def test_unchanged_estimates_invalidate_nothing():
    clustering, candidates, oracle, estimator, tracker, cache, ids = small_state()
    c0, c1, _ = ids
    merge = Merge(c0, c1)
    cache.estimated_benefit(merge)

    epoch_before = estimator.epoch
    # Re-adding an existing sample bumps the epoch but leaves every bucket
    # (and hence every estimate) identical.
    estimator.add_sample((0, 1), 0.8, 1.0)
    assert estimator.epoch > epoch_before
    assert cache.drain_dirty_operations() == set()

    hits_before = cache.stats.hits
    cache.estimated_benefit(merge)
    assert cache.stats.hits == hits_before + 1


def test_stats_accounting():
    _, _, _, _, _, cache, ids = small_state()
    c0, c1, _ = ids
    merge = Merge(c0, c1)
    assert cache.stats.lookups == 0
    assert cache.stats.hit_rate == 0.0

    cache.cost(merge)
    cache.cost(merge)
    stats = cache.stats
    assert (stats.lookups, stats.evaluations, stats.hits,
            stats.refreshes) == (2, 1, 1, 0)
    payload = stats.as_dict()
    assert payload["hit_rate"] == 0.5
    assert payload["lookups"] == 2
