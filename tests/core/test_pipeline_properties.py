"""Property-based tests of the whole ACD pipeline on random instances.

Hypothesis generates random candidate graphs with scripted crowd answers;
the pipeline must uphold its structural invariants on every one of them:
valid partitions, refinement never increasing Λ', parallel/sequential
generation equivalence, and cost accounting consistency.
"""

import random as random_module

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acd import run_acd
from repro.core.objective import lambda_objective
from repro.core.permutation import Permutation
from repro.crowd.cache import ScriptedAnswers
from repro.crowd.oracle import CrowdOracle
from tests.conftest import make_candidates


def random_instance(seed):
    """A random scripted instance: graph + machine scores + crowd answers."""
    rng = random_module.Random(seed)
    num_records = rng.randint(3, 16)
    machine = {}
    confidences = {}
    for i in range(num_records):
        for j in range(i + 1, num_records):
            if rng.random() < 0.35:
                machine[(i, j)] = round(rng.uniform(0.31, 0.95), 2)
                confidences[(i, j)] = rng.choice(
                    (0.0, 1 / 3, 2 / 3, 1.0)
                )
    candidates = make_candidates(machine)
    answers = ScriptedAnswers(confidences, num_workers=3)
    return num_records, candidates, answers, confidences


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 50))
def test_acd_produces_valid_partition(instance_seed, run_seed):
    num_records, candidates, answers, _ = random_instance(instance_seed)
    result = run_acd(range(num_records), candidates, answers, seed=run_seed)
    result.clustering.check_invariants()
    assert result.clustering.num_records == num_records


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 50))
def test_refinement_never_hurts_lambda(instance_seed, run_seed):
    """Λ' (measured on full answers) of ACD's output is never worse than
    the generation phase's output for the same permutation."""
    num_records, candidates, answers, confidences = random_instance(
        instance_seed
    )

    def full_confidence(a, b):
        return confidences.get((min(a, b), max(a, b)), 0.0)

    generation_only = run_acd(range(num_records), candidates, answers,
                              seed=run_seed, refine=False)
    refined = run_acd(range(num_records), candidates, answers, seed=run_seed)
    lambda_generation = lambda_objective(
        generation_only.clustering, candidates.pairs, full_confidence
    )
    lambda_refined = lambda_objective(
        refined.clustering, candidates.pairs, full_confidence
    )
    assert lambda_refined <= lambda_generation + 1e-9


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 50))
def test_parallel_matches_sequential_generation(instance_seed, run_seed):
    num_records, candidates, answers, _ = random_instance(instance_seed)
    permutation = Permutation.random(range(num_records), seed=run_seed)
    parallel = run_acd(range(num_records), candidates, answers,
                       permutation=permutation, refine=False)
    sequential = run_acd(range(num_records), candidates, answers,
                         permutation=permutation, refine=False,
                         parallel=False)
    assert parallel.clustering.as_sets() == sequential.clustering.as_sets()


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 50))
def test_cost_accounting_consistent(instance_seed, run_seed):
    num_records, candidates, answers, _ = random_instance(instance_seed)
    result = run_acd(range(num_records), candidates, answers, seed=run_seed)
    stats = result.stats
    # Unique pairs never exceed the candidate set.
    assert stats.pairs_issued <= len(candidates)
    # Batch sizes reconcile exactly with the totals.
    assert sum(stats.batch_sizes) == stats.pairs_issued
    assert len(stats.batch_sizes) == stats.iterations
    # HITs are the per-batch ceilings.
    import math
    assert stats.hits == sum(
        math.ceil(size / stats.pairs_per_hit) for size in stats.batch_sizes
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_acd_deterministic_per_seed(instance_seed):
    num_records, candidates, answers, _ = random_instance(instance_seed)
    first = run_acd(range(num_records), candidates, answers, seed=1)
    second = run_acd(range(num_records), candidates, answers, seed=1)
    assert first.clustering.as_sets() == second.clustering.as_sets()
    assert first.stats.batch_sizes == second.stats.batch_sizes
