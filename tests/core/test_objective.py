"""Tests for repro.core.objective — including the paper's Example 1."""

import itertools

import pytest

from repro.core.clustering import Clustering
from repro.core.objective import (
    lambda_objective,
    merge_benefit,
    pairwise_cost,
    split_benefit,
)

# Table 2 of the paper: similarity scores for Example 1 (records a..f -> 0..5).
TABLE2_SCORES = {
    (0, 1): 0.81,  # (a, b)
    (1, 2): 0.75,  # (b, c)
    (0, 2): 0.73,  # (a, c)
    (3, 4): 0.72,  # (d, e)
    (3, 5): 0.70,  # (d, f)
    (4, 5): 0.69,  # (e, f)
    (2, 3): 0.45,  # (c, d)
    (0, 3): 0.43,  # (a, d)
    (0, 4): 0.37,  # (a, e)
}


def table2_lookup(a, b):
    return TABLE2_SCORES.get((min(a, b), max(a, b)), 0.0)


def all_partitions(items):
    """Every partition of a small list (Bell-number enumeration)."""
    if not items:
        yield []
        return
    head, *rest = items
    for partition in all_partitions(rest):
        for index in range(len(partition)):
            yield partition[:index] + [partition[index] + [head]] + partition[index + 1:]
        yield partition + [[head]]


class TestExample1:
    def test_paper_clustering_minimizes_lambda(self):
        """Example 1: Λ(R) is minimized by {a,b,c}, {d,e,f}."""
        best_cost = float("inf")
        best_partition = None
        for partition in all_partitions(list(range(6))):
            clustering = Clustering(partition)
            cost = lambda_objective(clustering, TABLE2_SCORES, table2_lookup)
            if cost < best_cost:
                best_cost = cost
                best_partition = clustering.as_sets()
        assert best_partition == [frozenset({0, 1, 2}), frozenset({3, 4, 5})]

    def test_value_of_paper_clustering(self):
        clustering = Clustering([{0, 1, 2}, {3, 4, 5}])
        cost = lambda_objective(clustering, TABLE2_SCORES, table2_lookup)
        # Intra: (1-.81)+(1-.75)+(1-.73)+(1-.72)+(1-.70)+(1-.69) = 1.60
        # Inter (separated pairs in S): .45+.43+.37 = 1.25
        assert cost == pytest.approx(1.60 + 1.25)


class TestLambdaObjective:
    def test_everything_separate(self):
        clustering = Clustering.singletons(range(6))
        cost = lambda_objective(clustering, TABLE2_SCORES, table2_lookup)
        assert cost == pytest.approx(sum(TABLE2_SCORES.values()))

    def test_everything_together_counts_non_candidates(self):
        clustering = Clustering([set(range(6))])
        cost = lambda_objective(clustering, TABLE2_SCORES, table2_lookup)
        in_s = sum(1.0 - s for s in TABLE2_SCORES.values())
        outside = 15 - len(TABLE2_SCORES)  # C(6,2) - |S|, each costs 1
        assert cost == pytest.approx(in_s + outside)

    def test_duplicate_pairs_in_input_counted_once(self):
        clustering = Clustering.singletons([0, 1])
        cost = lambda_objective(clustering, [(0, 1), (1, 0)], lambda a, b: 0.4)
        assert cost == pytest.approx(0.4)

    def test_pairwise_cost_helper(self):
        clustering = Clustering([{0, 1}, {2}])
        scored = [((0, 1), 0.9), ((1, 2), 0.2)]
        assert pairwise_cost(clustering, scored) == pytest.approx(0.1 + 0.2)


class TestBenefits:
    def test_split_benefit_formula(self):
        # Equation 5 with fc = [0.4, 0.0, 0.6]: (1-.8)+(1-0)+(1-1.2) = 1.0
        assert split_benefit([0.4, 0.0, 0.6]) == pytest.approx(1.0)

    def test_merge_benefit_formula(self):
        # Equation 6 with fc = [0.8, 0.8]: (1.6-1)+(1.6-1) = 1.2
        assert merge_benefit([0.8, 0.8]) == pytest.approx(1.2)

    def test_split_and_merge_are_inverse(self):
        confidences = [0.3, 0.7, 0.55]
        assert split_benefit(confidences) == pytest.approx(
            -merge_benefit(confidences)
        )

    def test_empty_benefits_zero(self):
        assert split_benefit([]) == 0.0
        assert merge_benefit([]) == 0.0


class TestBenefitMatchesObjectiveDelta:
    """The Equation 5/6 benefits must equal the actual Λ' decrease."""

    def lookup(self, a, b):
        scores = {(0, 1): 0.9, (0, 2): 0.4, (1, 2): 0.3, (2, 3): 0.8}
        return scores.get((min(a, b), max(a, b)), 0.0)

    def pairs(self):
        return [(0, 1), (0, 2), (1, 2), (2, 3)]

    def test_split_delta(self):
        before = Clustering([{0, 1, 2}, {3}])
        after = Clustering([{0, 1}, {2}, {3}])
        benefit = split_benefit([self.lookup(2, 0), self.lookup(2, 1)])
        delta = (
            lambda_objective(before, self.pairs(), self.lookup)
            - lambda_objective(after, self.pairs(), self.lookup)
        )
        assert benefit == pytest.approx(delta)

    def test_merge_delta(self):
        before = Clustering([{0, 1}, {2, 3}])
        after = Clustering([{0, 1, 2, 3}])
        benefit = merge_benefit([
            self.lookup(0, 2), self.lookup(0, 3),
            self.lookup(1, 2), self.lookup(1, 3),
        ])
        delta = (
            lambda_objective(before, self.pairs(), self.lookup)
            - lambda_objective(after, self.pairs(), self.lookup)
        )
        assert benefit == pytest.approx(delta)
