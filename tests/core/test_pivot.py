"""Tests for repro.core.pivot (Crowd-Pivot, Algorithm 1)."""

import pytest

from repro.core.clustering import Clustering
from repro.core.permutation import Permutation
from repro.core.pivot import crowd_pivot
from tests.conftest import (
    FIG2_IDS,
    fig2_candidates,
    fig2_oracle,
    make_candidates,
    scripted_oracle,
)


class TestBasics:
    def test_covers_all_records(self):
        oracle = fig2_oracle()
        clustering = crowd_pivot(range(6), fig2_candidates(), oracle, seed=0)
        assert clustering.num_records == 6

    def test_isolated_vertices_become_singletons(self):
        candidates = make_candidates({(0, 1): 0.8})
        oracle = scripted_oracle({(0, 1): 0.9})
        clustering = crowd_pivot([0, 1, 2, 3], candidates, oracle, seed=1)
        assert clustering.together(0, 1)
        assert {frozenset({2}), frozenset({3})} <= set(clustering.as_sets())

    def test_isolated_vertices_cost_nothing(self):
        candidates = make_candidates({})
        oracle = scripted_oracle({})
        crowd_pivot([0, 1, 2], candidates, oracle, seed=1)
        assert oracle.stats.pairs_issued == 0
        assert oracle.stats.iterations == 0

    def test_low_confidence_neighbors_excluded(self):
        candidates = make_candidates({(0, 1): 0.8, (0, 2): 0.8})
        oracle = scripted_oracle({(0, 1): 0.9, (0, 2): 0.2})
        permutation = Permutation([0, 1, 2])
        clustering = crowd_pivot([0, 1, 2], candidates, oracle,
                                 permutation=permutation)
        assert clustering.together(0, 1)
        assert not clustering.together(0, 2)

    def test_exact_half_confidence_is_not_duplicate(self):
        candidates = make_candidates({(0, 1): 0.8})
        oracle = scripted_oracle({(0, 1): 0.5})
        clustering = crowd_pivot([0, 1], candidates, oracle, seed=0)
        assert not clustering.together(0, 1)


class TestPermutationSemantics:
    def test_pivot_order_respected(self):
        """With permutation (b, f, ...) on the Figure 2 graph, the clusters
        of Case 1 emerge: {b,a,c} and {f,d,e}."""
        permutation = Permutation([FIG2_IDS[x] for x in "bfacde"])
        clustering = crowd_pivot(range(6), fig2_candidates(), fig2_oracle(),
                                 permutation=permutation)
        assert clustering.as_sets() == [
            frozenset({FIG2_IDS["a"], FIG2_IDS["b"], FIG2_IDS["c"]}),
            frozenset({FIG2_IDS["d"], FIG2_IDS["e"], FIG2_IDS["f"]}),
        ]

    def test_case3_permutation_single_cluster_then_rest(self):
        """Permutation (b, c, a, f, d, e): c is absorbed by b's cluster, so
        the next actual pivot is f."""
        permutation = Permutation([FIG2_IDS[x] for x in "bcafde"])
        clustering = crowd_pivot(range(6), fig2_candidates(), fig2_oracle(),
                                 permutation=permutation)
        sets = set(clustering.as_sets())
        assert frozenset({FIG2_IDS["a"], FIG2_IDS["b"], FIG2_IDS["c"]}) in sets
        assert frozenset({FIG2_IDS["d"], FIG2_IDS["e"], FIG2_IDS["f"]}) in sets

    def test_one_iteration_per_pivot_with_edges(self):
        permutation = Permutation([FIG2_IDS[x] for x in "bfacde"])
        oracle = fig2_oracle()
        crowd_pivot(range(6), fig2_candidates(), oracle,
                    permutation=permutation)
        assert oracle.stats.iterations == 2  # pivots b and f

    def test_deterministic_given_seed(self):
        a = crowd_pivot(range(6), fig2_candidates(), fig2_oracle(), seed=3)
        b = crowd_pivot(range(6), fig2_candidates(), fig2_oracle(), seed=3)
        assert a.as_sets() == b.as_sets()


class TestRealInstance:
    def test_reasonable_on_tiny_restaurant(self, tiny_restaurant):
        from repro.crowd.oracle import CrowdOracle
        from repro.eval.metrics import f1_score
        oracle = CrowdOracle(tiny_restaurant.answers)
        clustering = crowd_pivot(
            tiny_restaurant.record_ids, tiny_restaurant.candidates, oracle,
            seed=5,
        )
        assert clustering.num_records == len(tiny_restaurant.dataset)
        assert f1_score(clustering, tiny_restaurant.dataset.gold) > 0.7
