"""Equivalence of the heap-based free-operation applier with the reference
re-enumeration implementation (they must pick identical operations)."""

import random as random_module

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import Clustering
from repro.core.estimator import HistogramEstimator
from repro.core.pc_pivot import pc_pivot
from repro.core.refine import (
    _apply_free_operations_reference,
    apply_free_operations,
    build_estimator,
)
from repro.crowd.cache import ScriptedAnswers
from repro.crowd.oracle import CrowdOracle
from tests.conftest import make_candidates


def random_refine_state(seed):
    """A random clustering with fully crowdsourced answers — the richest
    possible free-operation workload."""
    rng = random_module.Random(seed)
    num_records = rng.randint(4, 18)
    machine = {}
    confidences = {}
    for i in range(num_records):
        for j in range(i + 1, num_records):
            if rng.random() < 0.4:
                machine[(i, j)] = round(rng.uniform(0.31, 0.95), 2)
                confidences[(i, j)] = rng.choice(
                    (0.0, 1 / 3, 0.5, 2 / 3, 1.0)
                )
    candidates = make_candidates(machine)
    oracle = CrowdOracle(ScriptedAnswers(confidences, num_workers=3))
    oracle.ask_batch(candidates.pairs)  # everything known -> all ops free
    # A random starting partition.
    record_ids = list(range(num_records))
    rng.shuffle(record_ids)
    clusters = []
    index = 0
    while index < num_records:
        size = min(rng.randint(1, 4), num_records - index)
        clusters.append(record_ids[index:index + size])
        index += size
    return Clustering(clusters), candidates, oracle


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_heap_matches_reference(seed):
    clustering_a, candidates, oracle_a = random_refine_state(seed)
    clustering_b = clustering_a.copy()
    estimator_a = build_estimator(candidates, oracle_a)

    # Fresh oracle with identical knowledge for the reference run.
    _, _, oracle_b = random_refine_state(seed)
    estimator_b = build_estimator(candidates, oracle_b)

    applied_fast = apply_free_operations(
        clustering_a, candidates, oracle_a, estimator_a
    )
    applied_reference = _apply_free_operations_reference(
        clustering_b, candidates, oracle_b, estimator_b
    )
    assert clustering_a.as_sets() == clustering_b.as_sets()
    assert applied_fast == applied_reference


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000), st.integers(0, 20))
def test_full_refine_uses_heap_correctly(seed, run_seed):
    """End-to-end: generation + refinement still produce valid partitions
    and non-increasing Λ' with the heap applier in the loop."""
    from repro.core.pc_refine import pc_refine
    from repro.core.objective import lambda_objective

    clustering, candidates, oracle = random_refine_state(seed)
    del clustering  # refine from a pivot clustering instead
    generation = pc_pivot(
        sorted({r for pair in candidates.pairs for r in pair}) or [0],
        candidates, oracle, seed=run_seed,
    )
    refined = pc_refine(generation, candidates, oracle)
    refined.check_invariants()


def test_heap_handles_cascading_operations():
    """A split that enables a merge that enables another merge — the heap
    must respawn operations as clusters change."""
    # Records 0,1 wrongly clustered with 2; 0,1 belong with 3.
    confidences = {
        (0, 1): 1.0, (0, 2): 0.0, (1, 2): 0.0,
        (0, 3): 1.0, (1, 3): 1.0, (2, 4): 1.0,
    }
    candidates = make_candidates({pair: 0.7 for pair in confidences})
    oracle = CrowdOracle(ScriptedAnswers(confidences))
    oracle.ask_batch(candidates.pairs)
    clustering = Clustering([{0, 1, 2}, {3}, {4}])
    estimator = HistogramEstimator()
    applied = apply_free_operations(clustering, candidates, oracle, estimator)
    assert applied >= 2
    assert clustering.together(0, 3) and clustering.together(0, 1)
    assert not clustering.together(0, 2)
    assert clustering.together(2, 4)
