"""Tests for repro.core.refine (Crowd-Refine, Algorithm 4) — including the
full Appendix B walkthrough (Example 3)."""

import pytest

from repro.core.clustering import Clustering
from repro.core.objective import lambda_objective
from repro.core.permutation import Permutation
from repro.core.pc_pivot import pc_pivot
from repro.core.refine import (
    build_estimator,
    crowd_refine,
    enumerate_operations,
)
from repro.core.operations import Merge, Split
from repro.crowd.oracle import CrowdOracle
from tests.conftest import make_candidates, scripted_oracle

# ---------------------------------------------------------------------------
# Appendix B, Example 3.  Records a..f -> 0..5.  Candidate edges and the
# crowd confidences each pair would get.
# ---------------------------------------------------------------------------
A, B, C, D, E, F = range(6)

EXAMPLE3_CONFIDENCES = {
    (A, B): 0.9, (A, C): 0.9, (B, C): 0.9, (C, D): 0.6,
    (A, E): 0.3, (D, E): 0.8, (E, F): 0.9,
    (A, D): 0.4, (D, F): 0.8,
}
# Machine scores mirror the crowd scores (the example states b* == b).
EXAMPLE3_CANDIDATES = make_candidates(EXAMPLE3_CONFIDENCES)


def example3_oracle():
    return scripted_oracle(EXAMPLE3_CONFIDENCES)


class TestExample3:
    def test_generation_phase(self):
        """With permutation (c, e, b, d, a, f) and ε = 0.4, PC-Pivot issues
        both pivots' edges in one batch and forms {a,b,c,d} and {e,f}."""
        oracle = example3_oracle()
        permutation = Permutation([C, E, B, D, A, F])
        clustering = pc_pivot(range(6), EXAMPLE3_CANDIDATES, oracle,
                              epsilon=0.4, permutation=permutation)
        assert clustering.as_sets() == [
            frozenset({A, B, C, D}), frozenset({E, F}),
        ]
        assert oracle.stats.iterations == 1
        assert oracle.stats.pairs_issued == 6  # c's and e's edges

    def test_refinement_reaches_paper_result(self):
        """Crowd-Refine then splits d, merges {d} with {e,f}, and stops:
        final clusters {a,b,c} and {d,e,f}, crowdsourcing exactly the two
        extra pairs (a,d) and (d,f)."""
        oracle = example3_oracle()
        permutation = Permutation([C, E, B, D, A, F])
        clustering = pc_pivot(range(6), EXAMPLE3_CANDIDATES, oracle,
                              epsilon=0.4, permutation=permutation)
        refined = crowd_refine(clustering, EXAMPLE3_CANDIDATES, oracle)
        assert refined.as_sets() == [
            frozenset({A, B, C}), frozenset({D, E, F}),
        ]
        extra = set(oracle.known_pairs()) - {
            (A, C), (B, C), (C, D), (A, E), (D, E), (E, F)
        }
        assert extra == {(A, D), (D, F)}

    def test_split_benefit_value(self):
        """The example's split of d has benefit exactly 1.0 once (a,d) is
        known: fc(a,d)=0.4, fc(b,d)=0 (pruned), fc(c,d)=0.6."""
        from repro.core.objective import split_benefit
        assert split_benefit([0.4, 0.0, 0.6]) == pytest.approx(1.0)

    def test_merge_benefit_value(self):
        """The example's merger of {d} and {e,f} has benefit 1.2:
        fc(d,e)=0.8, fc(d,f)=0.8."""
        from repro.core.objective import merge_benefit
        assert merge_benefit([0.8, 0.8]) == pytest.approx(1.2)


class TestEnumerateOperations:
    def test_splits_only_for_multi_record_clusters(self):
        clustering = Clustering([{0, 1}, {2}])
        candidates = make_candidates({(0, 1): 0.8})
        operations = enumerate_operations(clustering, candidates)
        splits = [op for op in operations if isinstance(op, Split)]
        assert {op.record_id for op in splits} == {0, 1}

    def test_merges_only_for_candidate_connected_clusters(self):
        clustering = Clustering([{0}, {1}, {2}])
        candidates = make_candidates({(0, 1): 0.8})
        operations = enumerate_operations(clustering, candidates)
        merges = [op for op in operations if isinstance(op, Merge)]
        assert len(merges) == 1  # only the {0}-{1} pair; {2} is unreachable

    def test_no_duplicate_merges(self):
        clustering = Clustering([{0, 1}, {2, 3}])
        candidates = make_candidates({(0, 2): 0.8, (1, 3): 0.8})
        operations = enumerate_operations(clustering, candidates)
        merges = [op for op in operations if isinstance(op, Merge)]
        assert len(merges) == 1  # two edges, same cluster pair


class TestBuildEstimator:
    def test_uses_only_candidate_pairs_from_a(self):
        candidates = make_candidates({(0, 1): 0.8})
        oracle = scripted_oracle({(0, 1): 0.9, (5, 6): 0.5})
        oracle.ask_batch([(0, 1), (5, 6)])
        estimator = build_estimator(candidates, oracle)
        assert len(estimator) == 1


class TestRefinementInvariants:
    def test_lambda_never_increases(self, tiny_paper):
        """Refinement must not increase Λ'(R) measured on full answers."""
        for seed in (0, 1):
            oracle = CrowdOracle(tiny_paper.answers)
            clustering = pc_pivot(
                tiny_paper.record_ids, tiny_paper.candidates, oracle,
                epsilon=0.1, seed=seed,
            )
            def full_confidence(a, b):
                return tiny_paper.answers.confidence(a, b)
            before = lambda_objective(
                clustering.copy(), tiny_paper.candidates.pairs, full_confidence
            )
            refined = crowd_refine(clustering, tiny_paper.candidates, oracle)
            after = lambda_objective(
                refined, tiny_paper.candidates.pairs, full_confidence
            )
            assert after <= before + 1e-9

    def test_refinement_preserves_record_set(self, tiny_restaurant):
        oracle = CrowdOracle(tiny_restaurant.answers)
        clustering = pc_pivot(
            tiny_restaurant.record_ids, tiny_restaurant.candidates, oracle,
            epsilon=0.1, seed=0,
        )
        refined = crowd_refine(clustering, tiny_restaurant.candidates, oracle)
        assert refined.num_records == len(tiny_restaurant.dataset)
        refined.check_invariants()

    def test_terminates_with_nothing_to_do(self):
        """A clustering that is already optimal for fully-known answers must
        be returned unchanged without crowdsourcing."""
        candidates = make_candidates({(0, 1): 0.9, (2, 3): 0.9})
        oracle = scripted_oracle({(0, 1): 1.0, (2, 3): 0.0})
        oracle.ask_batch([(0, 1), (2, 3)])
        clustering = Clustering([{0, 1}, {2}, {3}])
        pairs_before = oracle.stats.pairs_issued
        refined = crowd_refine(clustering, candidates, oracle)
        assert refined.as_sets() == [
            frozenset({0, 1}), frozenset({2}), frozenset({3})
        ]
        assert oracle.stats.pairs_issued == pairs_before

    def test_free_merge_applied_without_crowd(self):
        """Two singletons with a known-duplicate edge merge for free."""
        candidates = make_candidates({(0, 1): 0.9})
        oracle = scripted_oracle({(0, 1): 1.0})
        oracle.ask_batch([(0, 1)])
        clustering = Clustering([{0}, {1}])
        pairs_before = oracle.stats.pairs_issued
        refined = crowd_refine(clustering, candidates, oracle)
        assert refined.together(0, 1)
        assert oracle.stats.pairs_issued == pairs_before

    def test_free_split_applied_without_crowd(self):
        candidates = make_candidates({(0, 1): 0.9})
        oracle = scripted_oracle({(0, 1): 0.0})
        oracle.ask_batch([(0, 1)])
        clustering = Clustering([{0, 1}])
        refined = crowd_refine(clustering, candidates, oracle)
        assert not refined.together(0, 1)

    def test_negative_benefit_operation_not_applied(self):
        """An estimated-positive operation whose confirmed benefit is
        negative must be crowdsourced but not applied."""
        # Estimator will predict high fc for (0,1) (trained on a high pair),
        # but the true answer is low -> merge rejected.
        candidates = make_candidates({(0, 1): 0.9, (2, 3): 0.9})
        oracle = scripted_oracle({(0, 1): 0.1, (2, 3): 0.95})
        oracle.ask_batch([(2, 3)])
        clustering = Clustering([{0}, {1}, {2, 3}])
        refined = crowd_refine(clustering, candidates, oracle)
        assert not refined.together(0, 1)
        assert oracle.knows(0, 1)  # it did pay to check


class TestZeroCostOnlyRefinement:
    """Regression: a refinement state where every operation is zero-cost.

    When the whole candidate set is already crowdsourced, every enumerable
    operation has cost 0.  The loop must drain them through the free path
    and terminate without crowdsourcing anything — and the benefit-cost
    ratio must stay a total, finite function over all of them (it used to
    raise ValueError for zero cost).
    """

    def test_all_known_refines_for_free(self):
        confidences = {(0, 1): 0.9, (1, 2): 0.9, (0, 2): 0.2, (3, 4): 0.8}
        candidates = make_candidates(confidences)
        oracle = scripted_oracle(confidences)
        oracle.ask_batch(list(confidences))
        pairs_before = oracle.stats.pairs_issued

        clustering = Clustering([{0, 1, 2}, {3}, {4}])
        refined = crowd_refine(clustering, candidates, oracle)

        assert oracle.stats.pairs_issued == pairs_before
        assert refined.together(3, 4)  # beneficial free merge applied
        refined.check_invariants()

    def test_ratio_is_total_over_all_zero_cost_operations(self):
        from repro.core.operations import OperationEvaluator
        confidences = {(0, 1): 0.9, (1, 2): 0.4, (0, 2): 0.2}
        candidates = make_candidates(confidences)
        oracle = scripted_oracle(confidences)
        oracle.ask_batch(list(confidences))
        clustering = Clustering([{0, 1}, {2}])
        estimator = build_estimator(candidates, oracle)
        evaluator = OperationEvaluator(clustering, candidates, oracle,
                                       estimator)
        for operation in enumerate_operations(clustering, candidates):
            assert evaluator.cost(operation) == 0
            ratio = evaluator.benefit_cost_ratio(operation)  # must not raise
            assert ratio == pytest.approx(evaluator.exact_benefit(operation))
