"""Tests for run_acd's configuration knobs (ranking, buckets, epsilon)."""

import pytest

from repro.core.acd import run_acd
from repro.eval.metrics import f1_score


class TestRankingKnob:
    def test_benefit_ranking_runs(self, tiny_paper):
        result = run_acd(tiny_paper.record_ids, tiny_paper.candidates,
                         tiny_paper.answers, seed=2, ranking="benefit")
        result.clustering.check_invariants()
        assert f1_score(result.clustering, tiny_paper.dataset.gold) > 0.5

    def test_invalid_ranking_rejected(self, tiny_paper):
        with pytest.raises(ValueError):
            run_acd(tiny_paper.record_ids, tiny_paper.candidates,
                    tiny_paper.answers, seed=2, ranking="magic")

    def test_rankings_agree_on_quality_regime(self, tiny_paper):
        ratio = run_acd(tiny_paper.record_ids, tiny_paper.candidates,
                        tiny_paper.answers, seed=2, ranking="ratio")
        benefit = run_acd(tiny_paper.record_ids, tiny_paper.candidates,
                          tiny_paper.answers, seed=2, ranking="benefit")
        gold = tiny_paper.dataset.gold
        assert abs(f1_score(ratio.clustering, gold)
                   - f1_score(benefit.clustering, gold)) < 0.2


class TestBucketKnob:
    @pytest.mark.parametrize("buckets", [1, 5, 50])
    def test_histogram_granularity_runs(self, tiny_paper, buckets):
        result = run_acd(tiny_paper.record_ids, tiny_paper.candidates,
                         tiny_paper.answers, seed=1, num_buckets=buckets)
        result.clustering.check_invariants()


class TestEpsilonKnob:
    def test_larger_epsilon_fewer_generation_iterations(self, tiny_paper):
        small = run_acd(tiny_paper.record_ids, tiny_paper.candidates,
                        tiny_paper.answers, seed=3, epsilon=0.0,
                        refine=False)
        large = run_acd(tiny_paper.record_ids, tiny_paper.candidates,
                        tiny_paper.answers, seed=3, epsilon=0.8,
                        refine=False)
        assert (large.generation_stats["iterations"]
                <= small.generation_stats["iterations"])

    def test_epsilon_does_not_change_clustering(self, tiny_paper):
        """Lemma 2/4 through the pipeline API: ε affects cost, never the
        generation-phase clustering (same permutation seed)."""
        from repro.core.permutation import Permutation
        permutation = Permutation.random(tiny_paper.record_ids, seed=9)
        outcomes = set()
        for epsilon in (0.0, 0.1, 0.8):
            result = run_acd(tiny_paper.record_ids, tiny_paper.candidates,
                             tiny_paper.answers, permutation=permutation,
                             epsilon=epsilon, refine=False)
            outcomes.add(tuple(result.clustering.as_sets()))
        assert len(outcomes) == 1


class TestRunnerKnobPassthrough:
    def test_run_method_epsilon_passthrough(self, tiny_restaurant):
        from repro.experiments.runner import run_method
        tight = run_method("PC-Pivot", tiny_restaurant, seed=5, epsilon=0.0)
        loose = run_method("PC-Pivot", tiny_restaurant, seed=5, epsilon=0.8)
        assert loose.iterations <= tight.iterations

    def test_run_method_divisor_passthrough(self, tiny_paper):
        from repro.experiments.runner import run_method
        result = run_method("ACD", tiny_paper, seed=5,
                            threshold_divisor=2.0)
        assert 0.0 <= result.f1 <= 1.0

    def test_five_worker_instance_hits_cheaper_packing(self):
        """The 5w setting packs 10 pairs per HIT — visible in HIT counts."""
        from repro.experiments.runner import prepare_instance, run_method
        five = prepare_instance("restaurant", "5w", scale=0.1, seed=3)
        result = run_method("CrowdER+", five)
        import math
        assert result.hits == math.ceil(len(five.candidates) / 10)
