"""Tests for PC-Refine's max_refinement_pairs budget cap."""

import pytest

from repro.core.pc_pivot import pc_pivot
from repro.core.pc_refine import pc_refine
from repro.crowd.oracle import CrowdOracle


def generation(instance, seed=4):
    oracle = CrowdOracle(instance.answers)
    clustering = pc_pivot(instance.record_ids, instance.candidates, oracle,
                          epsilon=0.1, seed=seed)
    return clustering, oracle


class TestBudgetCap:
    def test_zero_budget_means_no_crowdsourcing(self, tiny_paper):
        clustering, oracle = generation(tiny_paper)
        pairs_before = oracle.stats.pairs_issued
        pc_refine(clustering, tiny_paper.candidates, oracle,
                  num_records=len(tiny_paper.dataset),
                  max_refinement_pairs=0)
        assert oracle.stats.pairs_issued == pairs_before

    def test_zero_budget_still_applies_free_operations(self, tiny_paper):
        from repro.core.pc_refine import PCRefineDiagnostics
        clustering, oracle = generation(tiny_paper)
        diagnostics = PCRefineDiagnostics()
        pc_refine(clustering, tiny_paper.candidates, oracle,
                  num_records=len(tiny_paper.dataset),
                  max_refinement_pairs=0, diagnostics=diagnostics)
        assert diagnostics.rounds == 0  # no paid rounds

    def test_cap_limits_spend(self, tiny_paper):
        unlimited_clustering, unlimited_oracle = generation(tiny_paper)
        pc_refine(unlimited_clustering, tiny_paper.candidates,
                  unlimited_oracle, num_records=len(tiny_paper.dataset))
        unlimited_spend = unlimited_oracle.stats.pairs_issued

        capped_clustering, capped_oracle = generation(tiny_paper)
        generation_pairs = capped_oracle.stats.pairs_issued
        cap = 10
        pc_refine(capped_clustering, tiny_paper.candidates, capped_oracle,
                  num_records=len(tiny_paper.dataset),
                  max_refinement_pairs=cap)
        spent = capped_oracle.stats.pairs_issued - generation_pairs
        assert spent <= cap  # the cap is hard
        assert capped_oracle.stats.pairs_issued <= unlimited_spend

    def test_negative_budget_rejected(self, tiny_paper):
        clustering, oracle = generation(tiny_paper)
        with pytest.raises(ValueError):
            pc_refine(clustering, tiny_paper.candidates, oracle,
                      max_refinement_pairs=-1)

    def test_unlimited_is_default(self, tiny_paper):
        """No cap: behaves exactly as before (regression guard)."""
        a_clustering, a_oracle = generation(tiny_paper)
        pc_refine(a_clustering, tiny_paper.candidates, a_oracle,
                  num_records=len(tiny_paper.dataset))
        b_clustering, b_oracle = generation(tiny_paper)
        pc_refine(b_clustering, tiny_paper.candidates, b_oracle,
                  num_records=len(tiny_paper.dataset),
                  max_refinement_pairs=None)
        assert a_clustering.as_sets() == b_clustering.as_sets()
        assert a_oracle.stats.pairs_issued == b_oracle.stats.pairs_issued
