"""Tests for repro.core.lowerbound (the LP relaxation)."""

import pytest

from repro.core.clustering import Clustering
from repro.core.lowerbound import lp_lower_bound, optimality_gap
from repro.core.objective import lambda_objective
from tests.core.test_objective import TABLE2_SCORES, all_partitions


def brute_force_optimum(num_records, confidences):
    best = float("inf")
    for partition in all_partitions(list(range(num_records))):
        clustering = Clustering(partition)
        cost = lambda_objective(
            clustering, confidences,
            lambda a, b: confidences.get((min(a, b), max(a, b)), 0.0),
        )
        best = min(best, cost)
    return best


class TestLpLowerBound:
    def test_trivial_instances(self):
        assert lp_lower_bound([], {}) == 0.0
        assert lp_lower_bound([0], {}) == 0.0

    def test_consistent_instance_bound_is_tight(self):
        # Perfectly clusterable: {0,1} together, 2 apart.
        confidences = {(0, 1): 1.0, (0, 2): 0.0, (1, 2): 0.0}
        assert lp_lower_bound([0, 1, 2], confidences) == pytest.approx(0.0, abs=1e-8)

    def test_bad_triangle_bound(self):
        # fc(0,1)=fc(1,2)=1, fc(0,2)=0: any clustering pays >= ...; the LP
        # relaxation pays 1/2 (x_01=x_12=0? then x_02<=0 pays 1; LP optimum
        # sets x_01=x_12=1/2, x_02=1 -> cost 0.5+0.5+0 = 1? compute below).
        confidences = {(0, 1): 1.0, (1, 2): 1.0, (0, 2): 0.0}
        bound = lp_lower_bound([0, 1, 2], confidences)
        optimum = brute_force_optimum(3, confidences)
        assert bound <= optimum + 1e-8
        assert bound > 0.0

    def test_lower_bounds_brute_force_optimum(self):
        import random
        for seed in range(6):
            rng = random.Random(seed)
            n = rng.randint(3, 6)
            confidences = {
                (i, j): rng.choice((0.0, 0.25, 0.5, 0.75, 1.0))
                for i in range(n) for j in range(i + 1, n)
                if rng.random() < 0.7
            }
            bound = lp_lower_bound(range(n), confidences)
            optimum = brute_force_optimum(n, confidences)
            assert bound <= optimum + 1e-8

    def test_example1_bound(self):
        """The LP bound on Example 1 is at most the known optimum 2.85."""
        bound = lp_lower_bound(range(6), TABLE2_SCORES)
        assert bound <= 2.85 + 1e-8
        assert bound > 1.0  # and it is non-trivial

    def test_max_records_cap(self):
        with pytest.raises(ValueError):
            lp_lower_bound(range(50), {}, max_records=40)


class TestOptimalityGap:
    def test_gap_of_optimal_clustering(self):
        confidences = {(0, 1): 1.0, (0, 2): 0.0, (1, 2): 0.0}
        # Optimal clustering {{0,1},{2}} has Λ' = 0; bound 0 -> gap 1.
        assert optimality_gap(0.0, [0, 1, 2], confidences) == 1.0

    def test_positive_gap(self):
        confidences = {(0, 1): 1.0, (1, 2): 1.0, (0, 2): 0.0}
        bound = lp_lower_bound([0, 1, 2], confidences)
        assert optimality_gap(2.0 * bound, [0, 1, 2], confidences) == pytest.approx(2.0)

    def test_infinite_gap_when_bound_zero(self):
        confidences = {(0, 1): 1.0}
        assert optimality_gap(0.5, [0, 1], confidences) == float("inf")

    def test_pivot_gap_within_guarantee_on_example1(self):
        """Crowd-Pivot's average Λ' on Example 1 sits within the 5x LP
        guarantee (in fact well within)."""
        from repro.core.permutation import Permutation
        from repro.core.pivot import crowd_pivot
        from tests.conftest import make_candidates, scripted_oracle

        candidates = make_candidates({pair: 0.8 for pair in TABLE2_SCORES})
        total = 0.0
        runs = 40
        for seed in range(runs):
            clustering = crowd_pivot(
                range(6), candidates, scripted_oracle(TABLE2_SCORES),
                permutation=Permutation.random(range(6), seed=seed),
            )
            total += lambda_objective(
                clustering, TABLE2_SCORES,
                lambda a, b: TABLE2_SCORES.get((min(a, b), max(a, b)), 0.0),
            )
        average = total / runs
        gap = optimality_gap(average, range(6), TABLE2_SCORES)
        assert gap <= 5.0
