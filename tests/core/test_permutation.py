"""Tests for repro.core.permutation."""

import random

import pytest

from repro.core.permutation import Permutation


class TestConstruction:
    def test_rank_lookup(self):
        perm = Permutation([5, 3, 8])
        assert perm.rank(5) == 0
        assert perm.rank(8) == 2

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            Permutation([1, 1, 2])

    def test_random_is_seeded(self):
        a = Permutation.random(range(20), seed=4)
        b = Permutation.random(range(20), seed=4)
        assert list(a) == list(b)

    def test_random_differs_across_seeds(self):
        a = Permutation.random(range(20), seed=4)
        b = Permutation.random(range(20), seed=5)
        assert list(a) != list(b)

    def test_rng_and_seed_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Permutation.random(range(5), rng=random.Random(0), seed=1)

    def test_random_covers_all_items(self):
        perm = Permutation.random(range(10), seed=0)
        assert sorted(perm) == list(range(10))


class TestQueries:
    def test_first(self):
        perm = Permutation([7, 2, 9, 4])
        assert perm.first([9, 4, 2]) == 2

    def test_ordered(self):
        perm = Permutation([7, 2, 9, 4])
        assert perm.ordered([4, 9, 7]) == [7, 9, 4]

    def test_contains(self):
        perm = Permutation([1, 2])
        assert 1 in perm
        assert 3 not in perm

    def test_len(self):
        assert len(Permutation([1, 2, 3])) == 3

    def test_uniformity_smoke(self):
        """Each record should be first in roughly 1/n of random permutations."""
        counts = {i: 0 for i in range(4)}
        for seed in range(400):
            counts[Permutation.random(range(4), seed=seed).first(range(4))] += 1
        for count in counts.values():
            assert 60 < count < 140
