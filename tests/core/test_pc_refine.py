"""Tests for repro.core.pc_refine (PC-Refine, Algorithm 5)."""

import pytest

from repro.core.clustering import Clustering
from repro.core.objective import lambda_objective
from repro.core.pc_pivot import pc_pivot
from repro.core.pc_refine import (
    PCRefineDiagnostics,
    pc_refine,
    refinement_budget,
)
from repro.core.refine import crowd_refine
from repro.crowd.oracle import CrowdOracle
from tests.conftest import make_candidates, scripted_oracle


class TestRefinementBudget:
    def test_formula_one_batch_bound(self):
        # |R|=10, |C|=5 -> |R|^2/(2|C|) = 10; N_u = 100 -> N_m = 10; x=2 -> 5.
        assert refinement_budget(10, 5, 100, threshold_divisor=2.0) == 5.0

    def test_formula_unknown_bound(self):
        # N_u = 4 < 10 -> N_m = 4; x = 2 -> 2.
        assert refinement_budget(10, 5, 4, threshold_divisor=2.0) == 2.0

    def test_paper_default_divisor(self):
        assert refinement_budget(100, 10, 10_000) == pytest.approx(500 / 8)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            refinement_budget(10, 0, 5)
        with pytest.raises(ValueError):
            refinement_budget(10, 5, 5, threshold_divisor=0.0)


class TestBatchedBehaviour:
    def test_independent_operations_resolved_in_one_batch(self):
        """Two independent positive merges should cost one crowd iteration,
        where Crowd-Refine needs two."""
        confidences = {(0, 1): 0.9, (2, 3): 0.9}
        candidates = make_candidates({(0, 1): 0.8, (2, 3): 0.8})

        parallel_oracle = scripted_oracle(confidences)
        parallel = pc_refine(
            Clustering([{0}, {1}, {2}, {3}]), candidates, parallel_oracle,
            num_records=4,
            threshold_divisor=1.0,
        )
        assert parallel.together(0, 1) and parallel.together(2, 3)
        assert parallel_oracle.stats.iterations == 1

        sequential_oracle = scripted_oracle(confidences)
        sequential = crowd_refine(
            Clustering([{0}, {1}, {2}, {3}]), candidates, sequential_oracle
        )
        assert sequential.as_sets() == parallel.as_sets()
        assert sequential_oracle.stats.iterations == 2

    def test_dependent_operations_not_packed_together(self):
        """Two merges sharing a cluster are dependent; only one can be in
        O^i, so resolving both needs two batches."""
        confidences = {(0, 1): 0.9, (1, 2): 0.9, (0, 2): 0.9}
        candidates = make_candidates(
            {(0, 1): 0.8, (1, 2): 0.8, (0, 2): 0.8}
        )
        oracle = scripted_oracle(confidences)
        clustering = pc_refine(
            Clustering([{0}, {1}, {2}]), candidates, oracle, num_records=3,
            threshold_divisor=1.0,
        )
        assert clustering.together(0, 1) and clustering.together(1, 2)
        # First batch merges one pair; the follow-up merge of the third
        # record needs the remaining evidence.
        assert oracle.stats.iterations >= 1

    def test_terminates_when_nothing_positive(self):
        candidates = make_candidates({(0, 1): 0.4})
        oracle = scripted_oracle({(0, 1): 0.1})
        oracle.ask_batch([(0, 1)])
        clustering = pc_refine(
            Clustering([{0}, {1}]), candidates, oracle, num_records=2
        )
        assert len(clustering) == 2

    def test_free_operations_applied_before_batching(self):
        candidates = make_candidates({(0, 1): 0.9})
        oracle = scripted_oracle({(0, 1): 1.0})
        oracle.ask_batch([(0, 1)])
        diagnostics = PCRefineDiagnostics()
        clustering = pc_refine(
            Clustering([{0}, {1}]), candidates, oracle, num_records=2,
            diagnostics=diagnostics,
        )
        assert clustering.together(0, 1)
        assert diagnostics.free_operations_applied == 1
        assert diagnostics.rounds == 0  # no crowd batch was needed


class TestBudgetEffect:
    def test_small_budget_means_more_rounds(self, tiny_paper):
        """Shrinking T (larger divisor) cannot reduce the number of
        refinement rounds."""
        def rounds_for(divisor):
            oracle = CrowdOracle(tiny_paper.answers)
            clustering = pc_pivot(
                tiny_paper.record_ids, tiny_paper.candidates, oracle,
                epsilon=0.1, seed=4,
            )
            diagnostics = PCRefineDiagnostics()
            pc_refine(
                clustering, tiny_paper.candidates, oracle,
                num_records=len(tiny_paper.dataset),
                threshold_divisor=divisor, diagnostics=diagnostics,
            )
            return diagnostics.rounds

        assert rounds_for(16.0) >= rounds_for(2.0)

    def test_batch_sizes_respect_budget_loosely(self, tiny_paper):
        """Each round's packed cost stays near T (the greedy packer stops at
        the first operation crossing the budget)."""
        oracle = CrowdOracle(tiny_paper.answers)
        clustering = pc_pivot(
            tiny_paper.record_ids, tiny_paper.candidates, oracle,
            epsilon=0.1, seed=4,
        )
        diagnostics = PCRefineDiagnostics()
        pc_refine(
            clustering, tiny_paper.candidates, oracle,
            num_records=len(tiny_paper.dataset),
            threshold_divisor=8.0, diagnostics=diagnostics,
        )
        budget_cap = refinement_budget(
            len(tiny_paper.dataset), 1, len(tiny_paper.candidates),
            threshold_divisor=8.0,
        )
        # Loose sanity bound: one overshooting operation is allowed, and
        # every batch is at most the one-batch maximum.
        for size in diagnostics.batch_sizes:
            assert size <= budget_cap + len(tiny_paper.dataset)


class TestEquivalenceWithSequential:
    def test_matches_crowd_refine_on_example(self, tiny_restaurant):
        """On a low-error dataset both refiners should land on clusterings
        of equal Λ' quality (they may differ in tie-breaking)."""
        def run(refiner):
            oracle = CrowdOracle(tiny_restaurant.answers)
            clustering = pc_pivot(
                tiny_restaurant.record_ids, tiny_restaurant.candidates,
                oracle, epsilon=0.1, seed=9,
            )
            if refiner == "parallel":
                result = pc_refine(clustering, tiny_restaurant.candidates,
                                   oracle,
                                   num_records=len(tiny_restaurant.dataset))
            else:
                result = crowd_refine(clustering, tiny_restaurant.candidates,
                                      oracle)
            return lambda_objective(
                result, tiny_restaurant.candidates.pairs,
                lambda a, b: tiny_restaurant.answers.confidence(a, b),
            )

        assert run("parallel") == pytest.approx(run("sequential"), abs=2.0)

    def test_lambda_never_increases(self, tiny_product):
        oracle = CrowdOracle(tiny_product.answers)
        clustering = pc_pivot(
            tiny_product.record_ids, tiny_product.candidates, oracle,
            epsilon=0.1, seed=1,
        )
        def full(a, b):
            return tiny_product.answers.confidence(a, b)
        before = lambda_objective(
            clustering.copy(), tiny_product.candidates.pairs, full
        )
        refined = pc_refine(clustering, tiny_product.candidates, oracle,
                            num_records=len(tiny_product.dataset))
        after = lambda_objective(refined, tiny_product.candidates.pairs, full)
        assert after <= before + 1e-9
        refined.check_invariants()


class TestZeroCostOnlyRefinement:
    def test_all_known_refines_for_free(self):
        """Regression: when every candidate pair is already crowdsourced,
        every operation has cost 0 — PC-Refine must drain the free path and
        terminate without packing (or paying for) anything."""
        from tests.conftest import make_candidates, scripted_oracle
        confidences = {(0, 1): 0.9, (1, 2): 0.9, (0, 2): 0.2, (3, 4): 0.8}
        candidates = make_candidates(confidences)
        oracle = scripted_oracle(confidences)
        oracle.ask_batch(list(confidences))
        pairs_before = oracle.stats.pairs_issued

        diagnostics = PCRefineDiagnostics()
        refined = pc_refine(Clustering([{0, 1, 2}, {3}, {4}]), candidates,
                            oracle, num_records=5, diagnostics=diagnostics)

        assert oracle.stats.pairs_issued == pairs_before
        assert refined.together(3, 4)
        assert diagnostics.operations_packed in ([], [0])
        refined.check_invariants()
