"""Fast-vs-reference pivot engine equivalence.

The incremental engine (LiveVertexOrder + fused early-exiting Equation-4
scan + eager graph cleanup) must be indistinguishable from the reference
per-round re-derivation engine: identical clusterings, identical crowd
batch sequences, identical diagnostics, and identical observability event
streams — under clean and faulty crowds alike."""

import random as random_module

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import build_parser, main
from repro.core.acd import run_acd
from repro.core.partial_pivot import partial_pivot, waste_estimates
from repro.core.pc_pivot import PCPivotDiagnostics, choose_k, pc_pivot
from repro.core.permutation import Permutation
from repro.core.pivot import crowd_pivot
from repro.core.pivot_engine import (
    PIVOT_ENGINES,
    LiveVertexOrder,
    choose_pivots,
)
from repro.crowd.cache import FallbackAnswers, ScriptedAnswers
from repro.crowd.faults import FaultModel
from repro.crowd.oracle import CrowdOracle
from repro.datasets.registry import generate
from repro.datasets.schema import canonical_pair
from repro.experiments.chaos import _platform_answers
from repro.experiments.configs import PRUNING_THRESHOLD
from repro.obs import ObsContext
from repro.pruning.candidate import build_candidate_set
from repro.pruning.graph import CandidateGraph
from repro.similarity.composite import jaccard_similarity_function
from tests.conftest import FIG2_IDS, fig2_candidates, fig2_oracle, \
    make_candidates

EPSILONS = (0.0, 0.05, 0.1, 0.3, 1.0)


class RecordingOracle(CrowdOracle):
    """A CrowdOracle that logs every batch it is asked, in order.

    Equivalence on ``pairs_issued`` alone would accept engines that issue
    the same pairs in different rounds; the batch log pins the *sequence*.
    """

    def __init__(self, answers):
        super().__init__(answers)
        self.batches = []

    def ask_batch(self, pairs):
        batch = list(pairs)
        self.batches.append(
            tuple(sorted(canonical_pair(a, b) for a, b in batch))
        )
        return super().ask_batch(batch)


def random_pivot_state(seed):
    """Random record set + candidate graph with scripted crowd answers.
    Returns (ids, candidates, factory for identically-scripted oracles)."""
    rng = random_module.Random(seed)
    num_records = rng.randint(4, 18)
    machine = {}
    confidences = {}
    for i in range(num_records):
        for j in range(i + 1, num_records):
            if rng.random() < 0.35:
                machine[(i, j)] = round(rng.uniform(0.31, 0.95), 2)
                confidences[(i, j)] = rng.choice(
                    (0.0, 0.25, 0.4, 0.6, 0.75, 1.0)
                )
    candidates = make_candidates(machine)

    def fresh_oracle():
        return RecordingOracle(ScriptedAnswers(confidences, num_workers=3))

    return list(range(num_records)), candidates, fresh_oracle


def _collected_events(obs):
    """(name, attrs) of every event in the trace, timestamps dropped."""
    collected = []

    def walk(span):
        for event in span.events:
            collected.append((event["name"], event["attrs"]))
        for child in span.children:
            walk(child)

    for root in obs.tracer.roots:
        walk(root)
    return collected


# ---------------------------------------------------------------------------
# Engine equivalence (property-tested)
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100_000), st.sampled_from(EPSILONS))
def test_pc_pivot_engines_agree(seed, epsilon):
    ids, candidates, fresh_oracle = random_pivot_state(seed)
    outcomes = {}
    for engine in PIVOT_ENGINES:
        oracle = fresh_oracle()
        diagnostics = PCPivotDiagnostics()
        clustering = pc_pivot(ids, candidates, oracle, epsilon=epsilon,
                              seed=seed, diagnostics=diagnostics,
                              engine=engine)
        clustering.check_invariants()
        outcomes[engine] = (
            clustering.as_sets(),
            oracle.stats.pairs_issued,
            oracle.stats.iterations,
            oracle.batches,
            diagnostics.ks,
            diagnostics.predicted_waste,
            diagnostics.issued_per_round,
        )
    assert outcomes["fast"] == outcomes["reference"]


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100_000))
def test_crowd_pivot_engines_agree(seed):
    ids, candidates, fresh_oracle = random_pivot_state(seed)
    outcomes = {}
    for engine in PIVOT_ENGINES:
        oracle = fresh_oracle()
        clustering = crowd_pivot(ids, candidates, oracle, seed=seed,
                                 engine=engine)
        clustering.check_invariants()
        outcomes[engine] = (clustering.as_sets(), oracle.stats.pairs_issued,
                            oracle.stats.iterations, oracle.batches)
    assert outcomes["fast"] == outcomes["reference"]


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 100_000), st.sampled_from(EPSILONS))
def test_choose_pivots_matches_reference(seed, epsilon):
    """The fused early-exiting scan equals choose_k + waste_estimates."""
    ids, candidates, _ = random_pivot_state(seed)
    graph = CandidateGraph(ids, candidates.pairs)
    permutation = Permutation.random(ids, seed=seed + 1)
    ordered = permutation.ordered(graph.vertices)
    k, estimates = choose_pivots(graph, ordered, epsilon)
    assert k == choose_k(graph, permutation, epsilon)
    assert estimates == waste_estimates(graph, ordered)[:k]


@pytest.mark.parametrize("seed", range(6))
def test_pc_pivot_event_streams_identical(seed):
    ids, candidates, fresh_oracle = random_pivot_state(seed)
    streams = {}
    for engine in PIVOT_ENGINES:
        obs = ObsContext()
        with obs.span("generation"):
            pc_pivot(ids, candidates, fresh_oracle(), seed=seed, obs=obs,
                     engine=engine)
        streams[engine] = _collected_events(obs)
    assert streams["fast"] == streams["reference"]


@pytest.mark.parametrize("seed", range(6))
def test_crowd_pivot_event_streams_identical(seed):
    ids, candidates, fresh_oracle = random_pivot_state(seed)
    streams = {}
    for engine in PIVOT_ENGINES:
        obs = ObsContext()
        with obs.span("generation"):
            crowd_pivot(ids, candidates, fresh_oracle(), seed=seed, obs=obs,
                        engine=engine)
        streams[engine] = _collected_events(obs)
    assert streams["fast"] == streams["reference"]


@pytest.mark.parametrize("parallel", (True, False))
def test_run_acd_engines_agree(tiny_paper, parallel):
    results = {
        engine: run_acd(tiny_paper.record_ids, tiny_paper.candidates,
                        tiny_paper.answers, seed=2, parallel=parallel,
                        pivot_engine=engine)
        for engine in PIVOT_ENGINES
    }
    fast, reference = results["fast"], results["reference"]
    assert fast.clustering.as_sets() == reference.clustering.as_sets()
    assert fast.stats.pairs_issued == reference.stats.pairs_issued
    assert fast.stats.iterations == reference.stats.iterations


@pytest.mark.parametrize("seed", (0, 1))
def test_engines_agree_under_faulty_crowd(seed):
    """Each engine on its own fault-injecting platform (identical seeds):
    the platforms replay deterministically, so equivalence holds iff the
    engines issue identical batches in identical order."""
    dataset = generate("restaurant", scale=0.05, seed=seed)
    candidates = build_candidate_set(
        dataset.records, jaccard_similarity_function(),
        threshold=PRUNING_THRESHOLD,
    )
    fault_model = FaultModel(abandonment_probability=0.15, spam_fraction=0.2,
                             timeout_seconds=240.0)
    outcomes = {}
    for engine in PIVOT_ENGINES:
        answers = _platform_answers("restaurant", dataset, candidates, seed,
                                    fault_model)
        result = run_acd(dataset.record_ids, candidates, answers, seed=seed,
                         pivot_engine=engine)
        outcomes[engine] = (result.clustering.as_sets(),
                            result.stats.pairs_issued)
    assert outcomes["fast"] == outcomes["reference"]


def test_unknown_engine_rejected():
    ids, candidates, fresh_oracle = random_pivot_state(0)
    with pytest.raises(ValueError, match="engine"):
        pc_pivot(ids, candidates, fresh_oracle(), engine="bogus")
    with pytest.raises(ValueError, match="engine"):
        crowd_pivot(ids, candidates, fresh_oracle(), engine="bogus")


def test_partial_pivot_rejects_half_supplied_precomputation():
    """pivots and predicted_waste travel together or not at all."""
    ids, candidates, fresh_oracle = random_pivot_state(3)
    graph = CandidateGraph(ids, candidates.pairs)
    permutation = Permutation.random(ids, seed=0)
    pivots = permutation.ordered(graph.vertices)[:1]
    with pytest.raises(ValueError, match="together"):
        partial_pivot(graph, 1, permutation, fresh_oracle(), pivots=pivots)
    with pytest.raises(ValueError, match="together"):
        partial_pivot(graph, 1, permutation, fresh_oracle(),
                      predicted_waste=0)


# ---------------------------------------------------------------------------
# The ε=0 contract and the binding-waste-bound warning
# ---------------------------------------------------------------------------

# A pivot order over Figure 2 whose second pivot (d) shares two neighbors
# with the first (a): any ε below 1/3 rejects every prefix past k=1.
FIG2_BINDING_ORDER = [FIG2_IDS[x] for x in "adbcef"]


def test_epsilon_zero_contract():
    """ε=0 admits only the waste-free prefix (here a single pivot)."""
    candidates = fig2_candidates()
    graph = CandidateGraph(sorted(FIG2_IDS.values()), candidates.pairs)
    permutation = Permutation(FIG2_BINDING_ORDER)
    assert choose_k(graph, permutation, 0.0) == 1
    assert choose_pivots(
        graph, permutation.ordered(graph.vertices), 0.0
    ) == (1, [0])


def _fig2_warning_events(epsilon, engine="fast"):
    obs = ObsContext()
    with obs.span("generation"):
        pc_pivot(sorted(FIG2_IDS.values()), fig2_candidates(), fig2_oracle(),
                 epsilon=epsilon, permutation=Permutation(FIG2_BINDING_ORDER),
                 obs=obs, engine=engine)
    return [attrs for name, attrs in _collected_events(obs)
            if name == "pivot.waste_bound_binding"]


@pytest.mark.parametrize("engine", PIVOT_ENGINES)
def test_waste_bound_binding_warning_emitted(engine):
    """A round forced down to k=1 under a positive ε warns that the waste
    bound is binding (the round runs sequentially)."""
    warnings = _fig2_warning_events(0.01, engine=engine)
    assert warnings
    first = warnings[0]
    assert first["round"] == 1
    assert first["epsilon"] == 0.01
    assert first["live_records"] == 6


def test_waste_bound_warning_absent_when_not_binding():
    # A generous budget parallelizes the round: no warning.
    assert _fig2_warning_events(10.0) == []
    # ε=0 degrades by contract, not pathology: no warning either.
    assert _fig2_warning_events(0.0) == []


# ---------------------------------------------------------------------------
# LiveVertexOrder
# ---------------------------------------------------------------------------


class TestLiveVertexOrder:
    def test_orders_by_permutation_rank(self):
        permutation = Permutation([3, 1, 4, 0, 2])
        order = LiveVertexOrder(permutation, [0, 1, 2, 3, 4])
        assert order.live() == [3, 1, 4, 0, 2]
        assert len(order) == 5

    def test_subset_of_permutation(self):
        permutation = Permutation([3, 1, 4, 0, 2])
        order = LiveVertexOrder(permutation, [4, 2, 3])
        assert order.live() == [3, 4, 2]

    def test_rejects_vertices_missing_from_permutation(self):
        with pytest.raises(ValueError, match="missing"):
            LiveVertexOrder(Permutation([0, 1]), [0, 1, 7])

    def test_discard_compacts_lazily(self):
        order = LiveVertexOrder(Permutation([3, 1, 4, 0, 2]),
                                [0, 1, 2, 3, 4])
        order.discard([1, 0])
        assert len(order) == 3
        assert order.live() == [3, 4, 2]
        order.discard([3])
        assert order.live() == [4, 2]

    def test_first_advances_past_dead(self):
        order = LiveVertexOrder(Permutation([3, 1, 4, 0, 2]),
                                [0, 1, 2, 3, 4])
        assert order.first() == 3
        order.discard([3, 1, 4])
        assert order.first() == 0
        order.discard([0, 2])
        assert order.first() is None

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 100_000))
    def test_matches_reference_sort_under_random_discards(self, seed):
        rng = random_module.Random(seed)
        ids = list(range(rng.randint(1, 30)))
        permutation = Permutation.random(ids, seed=seed)
        order = LiveVertexOrder(permutation, ids)
        alive = set(ids)
        while alive:
            assert order.live() == permutation.ordered(alive)
            assert order.first() == permutation.first(alive)
            doomed = set(rng.sample(sorted(alive),
                                    rng.randint(1, len(alive))))
            order.discard(doomed)
            alive -= doomed
        assert order.live() == []
        assert order.first() is None


# ---------------------------------------------------------------------------
# Sharded generation: cross-shard merge byte-identity
# ---------------------------------------------------------------------------

SHARD_COUNTS = (1, 2, 3, 5)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100_000), st.sampled_from(EPSILONS))
def test_sharded_clustering_identical_to_classic(seed, epsilon):
    """Sharded generation reproduces the classic engine's clustering —
    including cluster IDs — for every shard count."""
    ids, candidates, fresh_oracle = random_pivot_state(seed)
    classic = pc_pivot(ids, candidates, fresh_oracle(), epsilon=epsilon,
                       seed=seed)
    for shards in SHARD_COUNTS:
        sharded = pc_pivot(ids, candidates, fresh_oracle(), epsilon=epsilon,
                           seed=seed, shards=shards)
        sharded.check_invariants()
        assert sharded.to_state() == classic.to_state()


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000), st.sampled_from(EPSILONS))
def test_sharded_accounting_invariant_across_shard_counts(seed, epsilon):
    """Stats, crowd batch sequence, diagnostics, and event streams are
    byte-identical for every shard count (component-local accounting is
    canonical, not packing-dependent)."""
    ids, candidates, fresh_oracle = random_pivot_state(seed)
    outcomes = []
    for shards in SHARD_COUNTS:
        oracle = fresh_oracle()
        diagnostics = PCPivotDiagnostics()
        obs = ObsContext()
        with obs.span("generation"):
            clustering = pc_pivot(ids, candidates, oracle, epsilon=epsilon,
                                  seed=seed, shards=shards,
                                  diagnostics=diagnostics, obs=obs)
        outcomes.append((
            clustering.to_state(),
            oracle.stats.pairs_issued,
            oracle.stats.iterations,
            oracle.stats.hits,
            oracle.batches,
            diagnostics.ks,
            diagnostics.predicted_waste,
            diagnostics.issued_per_round,
            _collected_events(obs),
        ))
    assert all(outcome == outcomes[0] for outcome in outcomes[1:])


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100_000), st.sampled_from(EPSILONS))
def test_sharded_pair_set_invariant_and_waste_bounded(seed, epsilon):
    """The issued pair set is invariant across shard counts, stays within
    the candidate set, and honors the per-component Equation-4 bound.
    (The set may differ from the *classic* engine's: the global
    permutation prefix couples components in classic Equation-4 rounds,
    so the two round structures waste different pairs — only the
    clustering is pinned across engines.)"""
    ids, candidates, fresh_oracle = random_pivot_state(seed)
    pair_sets = []
    for shards in (1, 3, 5):
        oracle = fresh_oracle()
        diagnostics = PCPivotDiagnostics()
        pc_pivot(ids, candidates, oracle, epsilon=epsilon, seed=seed,
                 shards=shards, diagnostics=diagnostics)
        issued = set(oracle.known_pairs())
        pair_sets.append(issued)
        assert issued <= set(candidates.pairs)
        # Equation 4, summed per round: predicted waste within ε of issued.
        assert (diagnostics.total_predicted_waste
                <= epsilon * oracle.stats.pairs_issued + 1e-9)
    assert pair_sets[0] == pair_sets[1] == pair_sets[2]


def test_run_acd_sharded_agrees(tiny_paper):
    """End-to-end ACD: sharded generation yields the classic clustering,
    and every shard count yields byte-identical stats.  (Refine's batch
    composition follows A's arrival order, which sharded generation
    canonicalizes per component — so classic-vs-sharded *stats* may
    differ while every sharded config agrees exactly.)"""
    base = run_acd(tiny_paper.record_ids, tiny_paper.candidates,
                   tiny_paper.answers, seed=2)
    sharded = {
        shards: run_acd(tiny_paper.record_ids, tiny_paper.candidates,
                        tiny_paper.answers, seed=2, pivot_shards=shards)
        for shards in (1, 3, 8)
    }
    for result in sharded.values():
        assert result.clustering.as_sets() == base.clustering.as_sets()
    first = sharded[1]
    for result in sharded.values():
        assert result.clustering.to_state() == first.clustering.to_state()
        assert result.stats == first.stats


class TestShardedValidation:
    def test_reference_engine_rejected(self):
        ids, candidates, fresh_oracle = random_pivot_state(1)
        with pytest.raises(ValueError, match="fast"):
            pc_pivot(ids, candidates, fresh_oracle(), shards=2,
                     engine="reference")

    def test_negative_shards_rejected(self):
        ids, candidates, fresh_oracle = random_pivot_state(1)
        with pytest.raises(ValueError, match="shards"):
            pc_pivot(ids, candidates, fresh_oracle(), shards=-1)

    def test_processes_without_shards_rejected(self):
        ids, candidates, fresh_oracle = random_pivot_state(1)
        with pytest.raises(ValueError, match="shards"):
            pc_pivot(ids, candidates, fresh_oracle(), processes=2)

    def test_non_pair_deterministic_source_rejected(self):
        """FallbackAnswers tracks degraded pairs statefully — forking it
        into workers could change answers, so sharding refuses it."""
        ids, candidates, _ = random_pivot_state(1)
        source = FallbackAnswers(ScriptedAnswers({}, num_workers=3),
                                 fallback=lambda pair: 0.0)
        oracle = CrowdOracle(source)
        with pytest.raises(ValueError, match="pair-deterministic"):
            pc_pivot(ids, candidates, oracle, shards=2)

    def test_run_acd_sequential_rejects_pivot_shards(self, tiny_paper):
        with pytest.raises(ValueError, match="parallel"):
            run_acd(tiny_paper.record_ids, tiny_paper.candidates,
                    tiny_paper.answers, parallel=False, pivot_shards=2)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCLI:
    def test_pivot_engine_flag_parsed(self):
        args = build_parser().parse_args(
            ["run", "restaurant", "--pivot-engine", "reference"]
        )
        assert args.pivot_engine == "reference"
        assert (build_parser().parse_args(["run", "restaurant"])
                .pivot_engine == "fast")
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "restaurant", "--pivot-engine", "nope"]
            )

    def test_run_with_reference_engine(self, capsys):
        assert main(["run", "restaurant", "--scale", "0.05",
                     "--pivot-engine", "reference"]) == 0
        assert "F1" in capsys.readouterr().out

    def test_pivot_shard_flags_parsed(self):
        args = build_parser().parse_args(
            ["run", "restaurant", "--pivot-shards", "4",
             "--pivot-processes", "2"]
        )
        assert args.pivot_shards == 4
        assert args.pivot_processes == 2
        defaults = build_parser().parse_args(["run", "restaurant"])
        assert defaults.pivot_shards == 0
        assert defaults.pivot_processes == 0

    def test_run_with_pivot_shards(self, capsys):
        assert main(["run", "restaurant", "--scale", "0.05",
                     "--method", "PC-Pivot", "--pivot-shards", "3"]) == 0
        assert "F1" in capsys.readouterr().out
