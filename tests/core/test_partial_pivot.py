"""Tests for repro.core.partial_pivot — Algorithm 2, Equation 3, and the
three Figure 2 cases of Section 4.2."""

import pytest

from repro.core.partial_pivot import partial_pivot, waste_estimates
from repro.core.permutation import Permutation
from repro.pruning.graph import CandidateGraph
from tests.conftest import FIG2_EDGES, FIG2_IDS, fig2_candidates, fig2_oracle


def fig2_graph():
    return CandidateGraph(range(6), [
        (FIG2_IDS[x], FIG2_IDS[y]) for x, y in FIG2_EDGES
    ])


def ids(letters):
    return [FIG2_IDS[x] for x in letters]


class TestWasteEstimates:
    def test_case1_distance_greater_than_two(self):
        """Pivots b, f: far apart, no waste possible (w = [0, 0])."""
        assert waste_estimates(fig2_graph(), ids("bf")) == [0, 0]

    def test_case2_distance_two(self):
        """Pivots b, e: share neighbor a, so one edge may be wasted."""
        assert waste_estimates(fig2_graph(), ids("be")) == [0, 1]

    def test_case3_adjacent_pivots(self):
        """Pivots b, c: adjacent, so all of c's non-pivot edges ({a, d})
        may be wasted (Equation 3, first case)."""
        assert waste_estimates(fig2_graph(), ids("bc")) == [0, 2]

    def test_first_pivot_never_wastes(self):
        for letter in "abcdef":
            assert waste_estimates(fig2_graph(), ids(letter)) == [0]

    def test_three_pivots_mixed(self):
        # b, f (far), then e: e adjacent to pivot f -> first case of Eq. 3:
        # neighbors of e except pivots {b,f} = {a, d} -> 2.
        assert waste_estimates(fig2_graph(), ids("bfe")) == [0, 0, 2]


class TestPartialPivotClusters:
    def test_case1(self):
        """M = (b, f, a, c, d, e), k = 2: clusters {b,a,c} and {f,d,e};
        issued pairs exactly the 4 edges of b and f."""
        graph = fig2_graph()
        oracle = fig2_oracle()
        result = partial_pivot(graph, 2, Permutation(ids("bfacde")), oracle)
        assert set(result.clusters) == {
            frozenset(ids("bac")), frozenset(ids("fde")),
        }
        assert len(result.issued_pairs) == 4
        assert result.predicted_waste == 0
        assert graph.is_empty()

    def test_case2(self):
        """M = (b, e, a, c, d, f), k = 2: clusters {b,a,c} and {e,d,f};
        5 edges issued, of which (e, a) is the wasted one."""
        graph = fig2_graph()
        oracle = fig2_oracle()
        result = partial_pivot(graph, 2, Permutation(ids("beacdf")), oracle)
        assert set(result.clusters) == {
            frozenset(ids("bac")), frozenset(ids("edf")),
        }
        assert len(result.issued_pairs) == 5
        assert result.predicted_waste == 1

    def test_case3(self):
        """M = (b, c, a, f, d, e), k = 2: c is absorbed into b's cluster, so
        only one cluster forms; d remains unclustered."""
        graph = fig2_graph()
        oracle = fig2_oracle()
        result = partial_pivot(graph, 2, Permutation(ids("bcafde")), oracle)
        assert set(result.clusters) == {frozenset(ids("bac"))}
        assert len(result.issued_pairs) == 4  # (a,b),(b,c),(a,c),(c,d)
        assert set(graph.vertices) == set(ids("def"))

    def test_one_iteration_per_call(self):
        oracle = fig2_oracle()
        partial_pivot(fig2_graph(), 3, Permutation(ids("abcdef")), oracle)
        assert oracle.stats.iterations == 1

    def test_k_larger_than_graph_is_clamped(self):
        graph = fig2_graph()
        result = partial_pivot(graph, 100, Permutation(ids("abcdef")),
                               fig2_oracle())
        assert graph.is_empty()
        assert sum(len(c) for c in result.clusters) == 6

    def test_empty_graph(self):
        graph = CandidateGraph([], [])
        result = partial_pivot(graph, 1, Permutation([]), fig2_oracle())
        assert result.clusters == ()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            partial_pivot(fig2_graph(), 0, Permutation(ids("abcdef")),
                          fig2_oracle())

    def test_isolated_pivot_forms_singleton(self):
        graph = CandidateGraph([0, 1, 2], [(1, 2)])
        from tests.conftest import scripted_oracle
        oracle = scripted_oracle({(1, 2): 0.9})
        result = partial_pivot(graph, 2, Permutation([0, 1, 2]), oracle)
        assert frozenset({0}) in set(result.clusters)
        assert frozenset({1, 2}) in set(result.clusters)


class TestWasteBoundHolds:
    def test_actual_waste_never_exceeds_estimate(self, tiny_paper):
        """Lemma 3: the Equation-3 estimate upper-bounds the actual wasted
        pairs (issued by Partial-Pivot but not by sequential Crowd-Pivot)."""
        from repro.core.pivot import crowd_pivot
        from repro.crowd.oracle import CrowdOracle

        ids_ = tiny_paper.record_ids
        candidates = tiny_paper.candidates
        for seed in range(3):
            permutation = Permutation.random(ids_, seed=seed)
            sequential_oracle = CrowdOracle(tiny_paper.answers)
            crowd_pivot(ids_, candidates, sequential_oracle,
                        permutation=permutation)
            sequential_pairs = set(sequential_oracle.known_pairs())

            graph = CandidateGraph(ids_, candidates.pairs)
            parallel_oracle = CrowdOracle(tiny_paper.answers)
            total_estimate = 0
            actual_waste = 0
            while not graph.is_empty():
                result = partial_pivot(graph, 4, permutation, parallel_oracle)
                total_estimate += result.predicted_waste
                actual_waste += sum(
                    1 for pair in result.issued_pairs
                    if pair not in sequential_pairs
                )
            assert actual_waste <= total_estimate
