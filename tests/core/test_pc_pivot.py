"""Tests for repro.core.pc_pivot — Algorithm 3, Equation 4, Lemma 2/4."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pc_pivot import PCPivotDiagnostics, choose_k, pc_pivot
from repro.core.permutation import Permutation
from repro.core.pivot import crowd_pivot
from repro.crowd.oracle import CrowdOracle
from repro.pruning.graph import CandidateGraph
from tests.conftest import (
    FIG2_EDGES,
    FIG2_IDS,
    fig2_candidates,
    fig2_oracle,
    make_candidates,
    scripted_oracle,
)


def fig2_graph():
    return CandidateGraph(range(6), [
        (FIG2_IDS[x], FIG2_IDS[y]) for x, y in FIG2_EDGES
    ])


def ids(letters):
    return [FIG2_IDS[x] for x in letters]


class TestChooseK:
    def test_epsilon_zero_still_parallelizes_disjoint_pivots(self):
        """With M = (b, f, ...) both pivots can be taken even at ε = 0
        because they can waste nothing (Case 1)."""
        k = choose_k(fig2_graph(), Permutation(ids("bfacde")), epsilon=0.0)
        assert k >= 2

    def test_epsilon_zero_rejects_wasting_prefix(self):
        """With M = (b, c, ...) pivot c risks 2 wasted pairs; at ε = 0 the
        chosen prefix must stop before accumulating predicted waste."""
        graph = fig2_graph()
        k = choose_k(graph, Permutation(ids("bcafde")), epsilon=0.0)
        estimates_prefix = [0]  # only b is waste-free at the start
        assert k == 1 or sum(estimates_prefix[:k]) == 0

    def test_larger_epsilon_never_decreases_k(self):
        permutation = Permutation(ids("beacdf"))
        previous = 0
        for epsilon in (0.0, 0.1, 0.3, 1.0, 5.0):
            k = choose_k(fig2_graph(), permutation, epsilon=epsilon)
            assert k >= previous
            previous = k

    def test_huge_epsilon_takes_everything(self):
        k = choose_k(fig2_graph(), Permutation(ids("abcdef")), epsilon=100.0)
        assert k == 6

    def test_always_at_least_one(self):
        k = choose_k(fig2_graph(), Permutation(ids("cbadef")), epsilon=0.0)
        assert k >= 1

    def test_empty_graph(self):
        graph = CandidateGraph([], [])
        assert choose_k(graph, Permutation([]), epsilon=0.1) == 0

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            choose_k(fig2_graph(), Permutation(ids("abcdef")), epsilon=-0.1)


class TestLemma2Equivalence:
    """PC-Pivot must produce exactly Crowd-Pivot's clustering for the same
    permutation and answers, for every ε."""

    @pytest.mark.parametrize("epsilon", [0.0, 0.1, 0.5, 2.0])
    def test_fig2_equivalence(self, epsilon):
        for seed in range(6):
            permutation = Permutation.random(range(6), seed=seed)
            sequential = crowd_pivot(range(6), fig2_candidates(),
                                     fig2_oracle(), permutation=permutation)
            parallel = pc_pivot(range(6), fig2_candidates(), fig2_oracle(),
                                epsilon=epsilon, permutation=permutation)
            assert sequential.as_sets() == parallel.as_sets()

    @pytest.mark.parametrize("dataset_fixture", [
        "tiny_restaurant", "tiny_paper", "tiny_product",
    ])
    def test_real_instance_equivalence(self, dataset_fixture, request):
        instance = request.getfixturevalue(dataset_fixture)
        permutation = Permutation.random(instance.record_ids, seed=11)
        sequential = crowd_pivot(
            instance.record_ids, instance.candidates,
            CrowdOracle(instance.answers), permutation=permutation,
        )
        parallel = pc_pivot(
            instance.record_ids, instance.candidates,
            CrowdOracle(instance.answers), epsilon=0.1,
            permutation=permutation,
        )
        assert sequential.as_sets() == parallel.as_sets()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.floats(0.0, 3.0))
    def test_property_random_graphs(self, seed, epsilon):
        """Equivalence on random scripted graphs with mixed answers."""
        import random as random_module
        rng = random_module.Random(seed)
        n = rng.randint(2, 14)
        vertices = list(range(n))
        edges = {}
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < 0.3:
                    edges[(i, j)] = rng.choice((0.1, 0.4, 0.6, 0.9))
        candidates = make_candidates({pair: 0.8 for pair in edges})
        permutation = Permutation.random(vertices, seed=seed + 1)
        sequential = crowd_pivot(
            vertices, candidates, scripted_oracle(edges),
            permutation=permutation,
        )
        parallel = pc_pivot(
            vertices, candidates, scripted_oracle(edges),
            epsilon=epsilon, permutation=permutation,
        )
        assert sequential.as_sets() == parallel.as_sets()


class TestWasteFractionBound:
    @pytest.mark.parametrize("epsilon", [0.1, 0.3])
    def test_predicted_waste_within_epsilon_of_issued(self, tiny_paper,
                                                      epsilon):
        """Lemma 4: per-round predicted waste stays within ε of pairs issued."""
        diagnostics = PCPivotDiagnostics()
        pc_pivot(
            tiny_paper.record_ids, tiny_paper.candidates,
            CrowdOracle(tiny_paper.answers), epsilon=epsilon, seed=2,
            diagnostics=diagnostics,
        )
        for waste, issued in zip(diagnostics.predicted_waste,
                                 diagnostics.issued_per_round):
            assert waste <= epsilon * issued + 1e-9


class TestDiagnosticsAndCosts:
    def test_fewer_iterations_than_sequential(self, tiny_restaurant):
        sequential_oracle = CrowdOracle(tiny_restaurant.answers)
        crowd_pivot(tiny_restaurant.record_ids, tiny_restaurant.candidates,
                    sequential_oracle, seed=3)
        parallel_oracle = CrowdOracle(tiny_restaurant.answers)
        pc_pivot(tiny_restaurant.record_ids, tiny_restaurant.candidates,
                 parallel_oracle, epsilon=0.1, seed=3)
        assert parallel_oracle.stats.iterations < sequential_oracle.stats.iterations

    def test_diagnostics_populated(self):
        diagnostics = PCPivotDiagnostics()
        pc_pivot(range(6), fig2_candidates(), fig2_oracle(), epsilon=0.1,
                 seed=1, diagnostics=diagnostics)
        assert diagnostics.rounds >= 1
        assert len(diagnostics.ks) == diagnostics.rounds
        assert diagnostics.total_predicted_waste >= 0

    def test_covers_all_records(self):
        clustering = pc_pivot(range(6), fig2_candidates(), fig2_oracle(),
                              epsilon=0.1, seed=1)
        assert clustering.num_records == 6
