"""Tests for repro.core.clustering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.clustering import Clustering


class TestConstruction:
    def test_singletons(self):
        clustering = Clustering.singletons([1, 2, 3])
        assert len(clustering) == 3
        assert clustering.num_records == 3

    def test_from_sets(self):
        clustering = Clustering([{1, 2}, {3}])
        assert clustering.together(1, 2)
        assert not clustering.together(1, 3)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Clustering([[]])

    def test_overlapping_clusters_rejected(self):
        with pytest.raises(ValueError):
            Clustering([{1, 2}, {2, 3}])


class TestQueries:
    def test_members_returns_copy(self):
        clustering = Clustering([{1, 2}])
        members = clustering.members(clustering.cluster_of(1))
        members.add(99)
        assert 99 not in clustering

    def test_as_sets_canonical(self):
        a = Clustering([{3, 4}, {1, 2}])
        b = Clustering([{1, 2}, {4, 3}])
        assert a.as_sets() == b.as_sets()

    def test_intra_cluster_pairs(self):
        clustering = Clustering([{1, 2, 3}, {4}])
        assert set(clustering.intra_cluster_pairs()) == {(1, 2), (1, 3), (2, 3)}

    def test_num_intra_cluster_pairs(self):
        clustering = Clustering([{1, 2, 3}, {4, 5}])
        assert clustering.num_intra_cluster_pairs() == 4

    def test_size(self):
        clustering = Clustering([{1, 2, 3}])
        assert clustering.size(clustering.cluster_of(1)) == 3


class TestSplit:
    def test_split_creates_singleton(self):
        clustering = Clustering([{1, 2, 3}])
        new_id = clustering.split(2)
        assert clustering.members(new_id) == {2}
        assert not clustering.together(1, 2)
        assert clustering.together(1, 3)

    def test_split_singleton_rejected(self):
        clustering = Clustering([{1}])
        with pytest.raises(ValueError):
            clustering.split(1)

    def test_split_preserves_record_count(self):
        clustering = Clustering([{1, 2, 3}])
        clustering.split(1)
        assert clustering.num_records == 3


class TestMerge:
    def test_merge_unions_members(self):
        clustering = Clustering([{1, 2}, {3}])
        survivor = clustering.merge(clustering.cluster_of(1),
                                    clustering.cluster_of(3))
        assert clustering.members(survivor) == {1, 2, 3}
        assert len(clustering) == 1

    def test_merge_self_rejected(self):
        clustering = Clustering([{1, 2}])
        with pytest.raises(ValueError):
            clustering.merge(clustering.cluster_of(1), clustering.cluster_of(2))

    def test_larger_cluster_survives(self):
        clustering = Clustering([{1, 2, 3}, {4}])
        big = clustering.cluster_of(1)
        survivor = clustering.merge(big, clustering.cluster_of(4))
        assert survivor == big


class TestCopy:
    def test_copy_independent(self):
        original = Clustering([{1, 2}, {3}])
        clone = original.copy()
        clone.merge(clone.cluster_of(1), clone.cluster_of(3))
        assert not original.together(1, 3)

    def test_copy_preserves_ids(self):
        original = Clustering([{1, 2}])
        clone = original.copy()
        assert clone.cluster_of(1) == original.cluster_of(1)


@given(st.lists(st.integers(0, 30), min_size=2, max_size=30, unique=True),
       st.data())
def test_random_operation_sequences_keep_invariants(record_ids, data):
    """Any sequence of valid splits and merges preserves the partition."""
    clustering = Clustering.singletons(record_ids)
    for _ in range(10):
        do_merge = data.draw(st.booleans())
        if do_merge and len(clustering) >= 2:
            ids = clustering.cluster_ids
            a = data.draw(st.sampled_from(ids))
            b = data.draw(st.sampled_from([c for c in ids if c != a]))
            clustering.merge(a, b)
        else:
            splittable = [
                r for r in record_ids
                if clustering.size(clustering.cluster_of(r)) >= 2
            ]
            if not splittable:
                continue
            clustering.split(data.draw(st.sampled_from(splittable)))
        clustering.check_invariants()
        assert clustering.num_records == len(record_ids)
