"""Tests for repro.core.acd (the end-to-end pipeline)."""

import pytest

from repro.core.acd import run_acd
from repro.core.permutation import Permutation
from repro.eval.metrics import f1_score


class TestPipeline:
    def test_returns_complete_clustering(self, tiny_restaurant):
        result = run_acd(
            tiny_restaurant.record_ids, tiny_restaurant.candidates,
            tiny_restaurant.answers, seed=1,
        )
        assert result.clustering.num_records == len(tiny_restaurant.dataset)
        result.clustering.check_invariants()

    def test_stats_are_cumulative(self, tiny_restaurant):
        result = run_acd(
            tiny_restaurant.record_ids, tiny_restaurant.candidates,
            tiny_restaurant.answers, seed=1,
        )
        total = result.stats.snapshot()
        for key in ("pairs_issued", "iterations"):
            assert total[key] == (
                result.generation_stats[key] + result.refinement_stats[key]
            )

    def test_refine_false_skips_phase3(self, tiny_paper):
        result = run_acd(
            tiny_paper.record_ids, tiny_paper.candidates, tiny_paper.answers,
            seed=1, refine=False,
        )
        assert result.refine_diagnostics is None
        assert result.refinement_stats["pairs_issued"] == 0

    def test_refinement_improves_f1_on_hard_dataset(self, tiny_paper):
        """The paper's headline: ACD beats bare PC-Pivot on Paper."""
        scores = {"with": 0.0, "without": 0.0}
        repetitions = 3
        for seed in range(repetitions):
            with_refine = run_acd(
                tiny_paper.record_ids, tiny_paper.candidates,
                tiny_paper.answers, seed=seed,
            )
            without = run_acd(
                tiny_paper.record_ids, tiny_paper.candidates,
                tiny_paper.answers, seed=seed, refine=False,
            )
            scores["with"] += f1_score(with_refine.clustering,
                                       tiny_paper.dataset.gold)
            scores["without"] += f1_score(without.clustering,
                                          tiny_paper.dataset.gold)
        assert scores["with"] > scores["without"]

    def test_sequential_mode(self, tiny_restaurant):
        result = run_acd(
            tiny_restaurant.record_ids, tiny_restaurant.candidates,
            tiny_restaurant.answers, seed=1, parallel=False,
        )
        assert result.pivot_diagnostics is None
        assert result.clustering.num_records == len(tiny_restaurant.dataset)

    def test_sequential_and_parallel_generation_agree(self, tiny_product):
        permutation = Permutation.random(tiny_product.record_ids, seed=5)
        parallel = run_acd(
            tiny_product.record_ids, tiny_product.candidates,
            tiny_product.answers, permutation=permutation, refine=False,
        )
        sequential = run_acd(
            tiny_product.record_ids, tiny_product.candidates,
            tiny_product.answers, permutation=permutation, refine=False,
            parallel=False,
        )
        assert parallel.clustering.as_sets() == sequential.clustering.as_sets()

    def test_deterministic_given_seed(self, tiny_paper):
        a = run_acd(tiny_paper.record_ids, tiny_paper.candidates,
                    tiny_paper.answers, seed=3)
        b = run_acd(tiny_paper.record_ids, tiny_paper.candidates,
                    tiny_paper.answers, seed=3)
        assert a.clustering.as_sets() == b.clustering.as_sets()
        assert a.stats.pairs_issued == b.stats.pairs_issued

    def test_diagnostics_attached(self, tiny_paper):
        result = run_acd(tiny_paper.record_ids, tiny_paper.candidates,
                         tiny_paper.answers, seed=3)
        assert result.pivot_diagnostics is not None
        assert result.pivot_diagnostics.rounds >= 1
        assert result.refine_diagnostics is not None

    def test_pairs_per_hit_flows_into_stats(self, tiny_restaurant):
        result = run_acd(
            tiny_restaurant.record_ids, tiny_restaurant.candidates,
            tiny_restaurant.answers, seed=1, pairs_per_hit=10,
        )
        assert result.stats.pairs_per_hit == 10
