"""Tests for repro.core.estimator (the equi-depth histogram)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.estimator import HistogramEstimator


class TestEmptyEstimator:
    def test_falls_back_to_machine_score(self):
        estimator = HistogramEstimator()
        assert estimator.estimate(0.42) == 0.42

    def test_fallback_clamps(self):
        estimator = HistogramEstimator()
        assert estimator.estimate(1.7) == 1.0
        assert estimator.estimate(-0.2) == 0.0

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            HistogramEstimator(num_buckets=0)


class TestSingleBucketBehaviour:
    def test_one_sample(self):
        estimator = HistogramEstimator(num_buckets=20)
        estimator.add_sample((0, 1), machine_score=0.5, crowd_score=0.9)
        # Every query maps to the single bucket's mean.
        assert estimator.estimate(0.1) == 0.9
        assert estimator.estimate(0.99) == 0.9

    def test_resample_overwrites(self):
        estimator = HistogramEstimator()
        estimator.add_sample((0, 1), 0.5, 0.9)
        estimator.add_sample((0, 1), 0.5, 0.1)
        assert estimator.estimate(0.5) == 0.1
        assert len(estimator) == 1


class TestEquiDepth:
    def test_buckets_have_equal_counts(self):
        estimator = HistogramEstimator(num_buckets=4)
        for index in range(40):
            machine = index / 40
            estimator.add_sample((index, index + 1000), machine, machine)
        table = estimator.bucket_table()
        assert len(table) == 4

    def test_low_scores_map_to_low_bucket(self):
        estimator = HistogramEstimator(num_buckets=2)
        # Low machine scores have crowd score 0.1; high have 0.9.
        for index in range(10):
            estimator.add_sample((index, index + 100), 0.1 + index * 0.01, 0.1)
        for index in range(10, 20):
            estimator.add_sample((index, index + 100), 0.8 + (index - 10) * 0.01, 0.9)
        assert estimator.estimate(0.12) == pytest.approx(0.1)
        assert estimator.estimate(0.85) == pytest.approx(0.9)

    def test_query_above_all_bounds_uses_last_bucket(self):
        estimator = HistogramEstimator(num_buckets=2)
        estimator.add_sample((0, 1), 0.2, 0.3)
        estimator.add_sample((1, 2), 0.4, 0.7)
        assert estimator.estimate(0.99) == 0.7

    def test_fewer_samples_than_buckets(self):
        estimator = HistogramEstimator(num_buckets=20)
        estimator.add_sample((0, 1), 0.3, 0.4)
        estimator.add_sample((1, 2), 0.7, 0.8)
        assert len(estimator.bucket_table()) == 2

    def test_add_samples_bulk(self):
        estimator = HistogramEstimator()
        estimator.add_samples({(0, 1): (0.3, 0.5), (1, 2): (0.6, 0.9)})
        assert len(estimator) == 2

    def test_rebuild_after_new_sample(self):
        estimator = HistogramEstimator(num_buckets=1)
        estimator.add_sample((0, 1), 0.5, 1.0)
        assert estimator.estimate(0.5) == 1.0
        estimator.add_sample((1, 2), 0.5, 0.0)
        assert estimator.estimate(0.5) == 0.5  # mean over both


class TestProperties:
    @given(st.lists(
        st.tuples(st.floats(0, 1), st.floats(0, 1)),
        min_size=1, max_size=60,
    ))
    def test_estimates_within_observed_crowd_range(self, samples):
        estimator = HistogramEstimator(num_buckets=5)
        for index, (machine, crowd) in enumerate(samples):
            estimator.add_sample((index, index + 1000), machine, crowd)
        crowd_scores = [crowd for _, crowd in samples]
        lo, hi = min(crowd_scores), max(crowd_scores)
        for query in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert lo - 1e-9 <= estimator.estimate(query) <= hi + 1e-9

    @given(st.floats(0, 1))
    def test_estimate_always_in_unit_interval(self, query):
        estimator = HistogramEstimator()
        estimator.add_sample((0, 1), 0.5, 0.75)
        assert 0.0 <= estimator.estimate(query) <= 1.0
