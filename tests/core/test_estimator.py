"""Tests for repro.core.estimator (the equi-depth histogram)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.estimator import HistogramEstimator


class TestEmptyEstimator:
    def test_falls_back_to_machine_score(self):
        estimator = HistogramEstimator()
        assert estimator.estimate(0.42) == 0.42

    def test_fallback_clamps(self):
        estimator = HistogramEstimator()
        assert estimator.estimate(1.7) == 1.0
        assert estimator.estimate(-0.2) == 0.0

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            HistogramEstimator(num_buckets=0)


class TestSingleBucketBehaviour:
    def test_one_sample(self):
        estimator = HistogramEstimator(num_buckets=20)
        estimator.add_sample((0, 1), machine_score=0.5, crowd_score=0.9)
        # Every query maps to the single bucket's mean.
        assert estimator.estimate(0.1) == 0.9
        assert estimator.estimate(0.99) == 0.9

    def test_resample_overwrites(self):
        estimator = HistogramEstimator()
        estimator.add_sample((0, 1), 0.5, 0.9)
        estimator.add_sample((0, 1), 0.5, 0.1)
        assert estimator.estimate(0.5) == 0.1
        assert len(estimator) == 1


class TestEquiDepth:
    def test_buckets_have_equal_counts(self):
        estimator = HistogramEstimator(num_buckets=4)
        for index in range(40):
            machine = index / 40
            estimator.add_sample((index, index + 1000), machine, machine)
        table = estimator.bucket_table()
        assert len(table) == 4

    def test_low_scores_map_to_low_bucket(self):
        estimator = HistogramEstimator(num_buckets=2)
        # Low machine scores have crowd score 0.1; high have 0.9.
        for index in range(10):
            estimator.add_sample((index, index + 100), 0.1 + index * 0.01, 0.1)
        for index in range(10, 20):
            estimator.add_sample((index, index + 100), 0.8 + (index - 10) * 0.01, 0.9)
        assert estimator.estimate(0.12) == pytest.approx(0.1)
        assert estimator.estimate(0.85) == pytest.approx(0.9)

    def test_query_above_all_bounds_uses_last_bucket(self):
        estimator = HistogramEstimator(num_buckets=2)
        estimator.add_sample((0, 1), 0.2, 0.3)
        estimator.add_sample((1, 2), 0.4, 0.7)
        assert estimator.estimate(0.99) == 0.7

    def test_fewer_samples_than_buckets(self):
        estimator = HistogramEstimator(num_buckets=20)
        estimator.add_sample((0, 1), 0.3, 0.4)
        estimator.add_sample((1, 2), 0.7, 0.8)
        assert len(estimator.bucket_table()) == 2

    def test_add_samples_bulk(self):
        estimator = HistogramEstimator()
        estimator.add_samples({(0, 1): (0.3, 0.5), (1, 2): (0.6, 0.9)})
        assert len(estimator) == 2

    def test_rebuild_after_new_sample(self):
        estimator = HistogramEstimator(num_buckets=1)
        estimator.add_sample((0, 1), 0.5, 1.0)
        assert estimator.estimate(0.5) == 1.0
        estimator.add_sample((1, 2), 0.5, 0.0)
        assert estimator.estimate(0.5) == 0.5  # mean over both


class TestDuplicateBoundMerge:
    """Regressions for equi-depth cuts landing inside runs of equal scores.

    Before the fix, two chunks could end on the same machine score and
    produce two buckets with identical upper bounds; ``bisect_left`` could
    only ever select the first, so the second bucket's samples were lost
    to queries at exactly that score.
    """

    def test_bounds_are_strictly_increasing(self):
        estimator = HistogramEstimator(num_buckets=4)
        # Eight samples, all at machine score 0.5 -> every chunk shares the
        # same upper bound and must collapse into one bucket.
        for index in range(8):
            estimator.add_sample((index, index + 100), 0.5, index / 8)
        table = estimator.bucket_table()
        bounds = [upper for upper, _ in table]
        assert bounds == sorted(set(bounds))
        assert len(table) == 1

    def test_merged_bucket_mean_weights_all_samples(self):
        estimator = HistogramEstimator(num_buckets=2)
        # Both equi-depth chunks end at 0.5; the merged bucket's mean must
        # cover all four crowd scores, not just the first chunk's.
        crowd_scores = (0.0, 0.2, 0.8, 1.0)
        for index, crowd in enumerate(crowd_scores):
            estimator.add_sample((index, index + 100), 0.5, crowd)
        assert estimator.estimate(0.5) == pytest.approx(
            sum(crowd_scores) / len(crowd_scores)
        )

    def test_partial_duplicate_run_keeps_later_buckets(self):
        estimator = HistogramEstimator(num_buckets=3)
        # First two chunks share bound 0.4 and merge; the third (0.9) must
        # survive as its own bucket and stay reachable.
        samples = [(0.4, 0.1), (0.4, 0.2), (0.4, 0.3), (0.4, 0.4),
                   (0.9, 1.0), (0.9, 1.0)]
        for index, (machine, crowd) in enumerate(samples):
            estimator.add_sample((index, index + 100), machine, crowd)
        bounds = [upper for upper, _ in estimator.bucket_table()]
        assert bounds == sorted(set(bounds))
        assert estimator.estimate(0.9) == pytest.approx(1.0)

    def test_score_equal_to_bound_belongs_to_that_bucket(self):
        estimator = HistogramEstimator(num_buckets=2)
        for index in range(5):
            estimator.add_sample((index, index + 100), 0.2, 0.1)
        for index in range(5, 10):
            estimator.add_sample((index, index + 100), 0.8, 0.9)
        # (bounds[i-1], bounds[i]] semantics: 0.2 is IN the low bucket.
        assert estimator.estimate(0.2) == pytest.approx(0.1)
        assert estimator.estimate(0.2 + 1e-9) == pytest.approx(0.9)

    def test_every_bucket_is_reachable(self):
        estimator = HistogramEstimator(num_buckets=5)
        for index in range(25):
            machine = (index % 5) / 5  # heavy ties at 5 distinct scores
            estimator.add_sample((index, index + 100), machine, machine)
        for upper, mean in estimator.bucket_table():
            assert estimator.estimate(upper) == pytest.approx(mean)


class TestProperties:
    @given(st.lists(
        st.tuples(st.floats(0, 1), st.floats(0, 1)),
        min_size=1, max_size=60,
    ))
    def test_estimates_within_observed_crowd_range(self, samples):
        estimator = HistogramEstimator(num_buckets=5)
        for index, (machine, crowd) in enumerate(samples):
            estimator.add_sample((index, index + 1000), machine, crowd)
        crowd_scores = [crowd for _, crowd in samples]
        lo, hi = min(crowd_scores), max(crowd_scores)
        for query in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert lo - 1e-9 <= estimator.estimate(query) <= hi + 1e-9

    @given(st.floats(0, 1))
    def test_estimate_always_in_unit_interval(self, query):
        estimator = HistogramEstimator()
        estimator.add_sample((0, 1), 0.5, 0.75)
        assert 0.0 <= estimator.estimate(query) <= 1.0

    @given(st.lists(
        st.tuples(st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
                  st.floats(0, 1)),
        min_size=1, max_size=60,
    ))
    def test_bounds_strictly_increasing_under_heavy_ties(self, samples):
        # Machine scores drawn from only five values force duplicate-bound
        # merges at every bucket count.
        estimator = HistogramEstimator(num_buckets=7)
        for index, (machine, crowd) in enumerate(samples):
            estimator.add_sample((index, index + 1000), machine, crowd)
        bounds = [upper for upper, _ in estimator.bucket_table()]
        assert all(nxt > prev for prev, nxt in zip(bounds, bounds[1:]))
