"""Fast-vs-reference refinement engine equivalence.

The incremental engine (EvaluationCache + lazy ranking) must be
indistinguishable from the reference full-re-evaluation engine: identical
clusterings, identical crowd traffic, identical diagnostics, and identical
observability event streams — under clean and faulty crowds alike."""

import random as random_module

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import build_parser, main
from repro.core.acd import run_acd
from repro.core.clustering import Clustering
from repro.core.evaluation_cache import EvaluationCache
from repro.core.operations import OperationEvaluator, independent
from repro.core.pc_refine import (
    PCRefineDiagnostics,
    _pack_independent_operations,
    _pack_independent_operations_fast,
    pc_refine,
)
from repro.core.refine import (
    REFINE_ENGINES,
    OperationCache,
    build_estimator,
    crowd_refine,
)
from repro.crowd.cache import ScriptedAnswers
from repro.crowd.faults import FaultModel
from repro.crowd.oracle import CrowdOracle
from repro.datasets.registry import generate
from repro.experiments.chaos import _platform_answers
from repro.experiments.configs import PRUNING_THRESHOLD
from repro.obs import ObsContext
from repro.pruning.candidate import build_candidate_set
from repro.similarity.composite import jaccard_similarity_function
from tests.conftest import make_candidates


def random_refine_state(seed):
    """Random clustering + candidates with *partial* crowd knowledge, so
    both the free path and the costly (estimated) path have work.  Returns
    a factory for identically-initialized oracles, one per engine."""
    rng = random_module.Random(seed)
    num_records = rng.randint(5, 18)
    machine = {}
    confidences = {}
    for i in range(num_records):
        for j in range(i + 1, num_records):
            if rng.random() < 0.4:
                machine[(i, j)] = round(rng.uniform(0.31, 0.95), 2)
                confidences[(i, j)] = rng.choice(
                    (0.0, 1 / 3, 0.5, 2 / 3, 1.0)
                )
    candidates = make_candidates(machine)
    known = [pair for pair in candidates.pairs if rng.random() < 0.55]

    def fresh_oracle():
        oracle = CrowdOracle(ScriptedAnswers(confidences, num_workers=3))
        if known:
            oracle.ask_batch(known)
        return oracle

    record_ids = list(range(num_records))
    rng.shuffle(record_ids)
    clusters = []
    index = 0
    while index < num_records:
        size = min(rng.randint(1, 4), num_records - index)
        clusters.append(record_ids[index:index + size])
        index += size
    return Clustering(clusters), candidates, fresh_oracle


def _collected_events(obs):
    """(name, attrs) of every event in the trace, timestamps dropped."""
    collected = []

    def walk(span):
        for event in span.events:
            collected.append((event["name"], event["attrs"]))
        for child in span.children:
            walk(child)

    for root in obs.tracer.roots:
        walk(root)
    return collected


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100_000))
def test_crowd_refine_engines_agree(seed):
    clustering, candidates, fresh_oracle = random_refine_state(seed)
    outcomes = {}
    for engine in REFINE_ENGINES:
        oracle = fresh_oracle()
        refined = crowd_refine(clustering.copy(), candidates, oracle,
                               engine=engine)
        refined.check_invariants()
        outcomes[engine] = (refined.as_sets(), oracle.stats.pairs_issued,
                            oracle.stats.iterations)
    assert outcomes["fast"] == outcomes["reference"]


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100_000))
def test_pc_refine_engines_agree(seed):
    clustering, candidates, fresh_oracle = random_refine_state(seed)
    outcomes = {}
    for engine in REFINE_ENGINES:
        oracle = fresh_oracle()
        diagnostics = PCRefineDiagnostics()
        refined = pc_refine(clustering.copy(), candidates, oracle,
                            diagnostics=diagnostics, engine=engine)
        refined.check_invariants()
        outcomes[engine] = (
            refined.as_sets(),
            oracle.stats.pairs_issued,
            diagnostics.batch_sizes,
            diagnostics.operations_packed,
            diagnostics.operations_applied,
            diagnostics.free_operations_applied,
        )
    assert outcomes["fast"] == outcomes["reference"]


@pytest.mark.parametrize("seed", range(6))
def test_crowd_refine_event_streams_identical(seed):
    clustering, candidates, fresh_oracle = random_refine_state(seed)
    streams = {}
    for engine in REFINE_ENGINES:
        obs = ObsContext()
        with obs.span("refinement"):
            crowd_refine(clustering.copy(), candidates, fresh_oracle(),
                         obs=obs, engine=engine)
        streams[engine] = _collected_events(obs)
    assert streams["fast"] == streams["reference"]


@pytest.mark.parametrize("seed", range(6))
def test_pc_refine_event_streams_identical(seed):
    clustering, candidates, fresh_oracle = random_refine_state(seed)
    streams = {}
    for engine in REFINE_ENGINES:
        obs = ObsContext()
        with obs.span("refinement"):
            pc_refine(clustering.copy(), candidates, fresh_oracle(),
                      obs=obs, engine=engine)
        streams[engine] = _collected_events(obs)
    assert streams["fast"] == streams["reference"]


@pytest.mark.parametrize("parallel", (True, False))
def test_run_acd_engines_agree(tiny_paper, parallel):
    results = {
        engine: run_acd(tiny_paper.record_ids, tiny_paper.candidates,
                        tiny_paper.answers, seed=2, parallel=parallel,
                        refine_engine=engine)
        for engine in REFINE_ENGINES
    }
    fast, reference = results["fast"], results["reference"]
    assert fast.clustering.as_sets() == reference.clustering.as_sets()
    assert fast.stats.pairs_issued == reference.stats.pairs_issued
    assert fast.stats.iterations == reference.stats.iterations


@pytest.mark.parametrize("seed", (0, 1))
def test_engines_agree_under_faulty_crowd(seed):
    """Each engine on its own fault-injecting platform (identical seeds):
    the platforms replay deterministically, so equivalence holds iff the
    engines issue identical batches in identical order."""
    dataset = generate("restaurant", scale=0.05, seed=seed)
    candidates = build_candidate_set(
        dataset.records, jaccard_similarity_function(),
        threshold=PRUNING_THRESHOLD,
    )
    fault_model = FaultModel(abandonment_probability=0.15, spam_fraction=0.2,
                             timeout_seconds=240.0)
    outcomes = {}
    for engine in REFINE_ENGINES:
        answers = _platform_answers("restaurant", dataset, candidates, seed,
                                    fault_model)
        result = run_acd(dataset.record_ids, candidates, answers, seed=seed,
                         refine_engine=engine)
        outcomes[engine] = (result.clustering.as_sets(),
                            result.stats.pairs_issued)
    assert outcomes["fast"] == outcomes["reference"]


@pytest.mark.parametrize("seed", range(8))
def test_fast_packer_matches_reference(seed):
    """The lazily ordered packer must reproduce the reference packing
    exactly, and every packed set must be pairwise independent."""
    clustering, candidates, fresh_oracle = random_refine_state(seed)
    oracle = fresh_oracle()
    estimator = build_estimator(candidates, oracle)
    evaluator = OperationEvaluator(clustering, candidates, oracle, estimator)
    for ranking in ("ratio", "benefit"):
        for hard_budget in (False, True):
            for budget in (0.0, 1.0, 3.0, 10.0):
                reference = _pack_independent_operations(
                    clustering, candidates, evaluator, budget,
                    ranking=ranking, hard_budget=hard_budget,
                )
                cache = OperationCache(clustering, candidates)
                evaluations = EvaluationCache(
                    clustering, candidates, oracle, estimator, cache.tracker
                )
                fast = _pack_independent_operations_fast(
                    cache, evaluations, budget,
                    ranking=ranking, hard_budget=hard_budget,
                )
                assert fast == reference
                for i, op_a in enumerate(fast):
                    for op_b in fast[i + 1:]:
                        assert independent(op_a, op_b)


def test_unknown_engine_rejected():
    clustering, candidates, fresh_oracle = random_refine_state(0)
    with pytest.raises(ValueError, match="engine"):
        crowd_refine(clustering.copy(), candidates, fresh_oracle(),
                     engine="bogus")
    with pytest.raises(ValueError, match="engine"):
        pc_refine(clustering.copy(), candidates, fresh_oracle(),
                  engine="bogus")


class TestCLI:
    def test_refine_engine_flag_parsed(self):
        args = build_parser().parse_args(
            ["run", "restaurant", "--refine-engine", "reference"]
        )
        assert args.refine_engine == "reference"
        assert (build_parser().parse_args(["run", "restaurant"])
                .refine_engine == "fast")
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "restaurant", "--refine-engine", "nope"]
            )

    def test_run_with_reference_engine(self, capsys):
        assert main(["run", "restaurant", "--scale", "0.05",
                     "--refine-engine", "reference"]) == 0
        assert "F1" in capsys.readouterr().out
