"""The cached operation enumeration must be indistinguishable from the
from-scratch scan — same operations, same order — across arbitrary
apply sequences (order matters: the estimated path breaks benefit-ratio
ties by enumeration order)."""

import random as random_module

import pytest

from repro.core.clustering import Clustering
from repro.core.refine import (
    ClusterVersionTracker,
    OperationCache,
    enumerate_operations,
)
from repro.core.operations import Merge, Split
from tests.conftest import make_candidates


def random_state(seed):
    rng = random_module.Random(seed)
    num_records = rng.randint(4, 20)
    machine = {}
    for i in range(num_records):
        for j in range(i + 1, num_records):
            if rng.random() < 0.35:
                machine[(i, j)] = round(rng.uniform(0.31, 0.95), 2)
    candidates = make_candidates(machine)
    clustering = Clustering()
    records = list(range(num_records))
    rng.shuffle(records)
    while records:
        take = min(len(records), rng.randint(1, 4))
        clustering.add_cluster(records[:take])
        records = records[take:]
    return clustering, candidates


@pytest.mark.parametrize("seed", range(12))
def test_cache_matches_enumeration_across_mutations(seed):
    rng = random_module.Random(seed * 1000 + 7)
    clustering, candidates = random_state(seed)
    cache = OperationCache(clustering, candidates)

    for _ in range(15):
        expected = enumerate_operations(clustering, candidates)
        assert cache.operations() == expected
        # Re-reading without mutating must stay stable.
        assert cache.operations() == expected
        if not expected:
            break
        cache.apply(rng.choice(expected))


@pytest.mark.parametrize("seed", range(6))
def test_cache_with_shared_tracker(seed):
    """A cache wired to an external tracker sees mutations applied through
    that tracker (the free-operation heap and the cache share one)."""
    clustering, candidates = random_state(seed)
    tracker = ClusterVersionTracker(clustering)
    cache = OperationCache(clustering, candidates, tracker=tracker)
    rng = random_module.Random(seed)

    for _ in range(8):
        expected = enumerate_operations(clustering, candidates)
        assert cache.operations() == expected
        if not expected:
            break
        tracker.apply(clustering, rng.choice(expected))


def test_cache_handles_split_then_merge():
    clustering = Clustering()
    c0 = clustering.add_cluster([0, 1])
    clustering.add_cluster([2])
    candidates = make_candidates({(0, 1): 0.8, (1, 2): 0.6})
    cache = OperationCache(clustering, candidates)
    assert cache.operations() == enumerate_operations(clustering, candidates)

    cache.apply(Split(1, c0))
    assert cache.operations() == enumerate_operations(clustering, candidates)

    merge = next(op for op in cache.operations() if isinstance(op, Merge))
    cache.apply(merge)
    assert cache.operations() == enumerate_operations(clustering, candidates)


def test_tracker_versions():
    clustering = Clustering()
    c0 = clustering.add_cluster([0, 1])
    c1 = clustering.add_cluster([2])
    tracker = ClusterVersionTracker(clustering)
    assert tracker.version(c0) == 0 and tracker.version(c1) == 0

    snap = tracker.snapshot([c0, c1])
    assert tracker.is_current(snap)

    invalidated = tracker.apply(clustering, Split(1, c0))
    assert c0 in invalidated  # shrunk survivor
    assert len(invalidated) == 2  # plus the created singleton
    assert tracker.version(c0) == 1
    assert not tracker.is_current(snap)
    assert tracker.is_current(tracker.snapshot([c1]))
