"""Empirical check of the Pivot approximation guarantee (Lemma 1/4).

Pivot is a 5-approximation of the Λ' minimum *in expectation over its
random pivot order*.  On small instances the optimum is computable by
exhaustive partition enumeration, and the expectation can be estimated by
averaging many permutations — the averaged cost must stay within the
guarantee (with slack for sampling noise).
"""

import itertools
import random

import pytest

from repro.core.clustering import Clustering
from repro.core.objective import lambda_objective
from repro.core.permutation import Permutation
from repro.core.pivot import crowd_pivot
from tests.conftest import make_candidates, scripted_oracle


def all_partitions(items):
    if not items:
        yield []
        return
    head, *rest = items
    for partition in all_partitions(rest):
        for index in range(len(partition)):
            yield (partition[:index] + [partition[index] + [head]]
                   + partition[index + 1:])
        yield partition + [[head]]


def optimal_lambda(num_records, confidences):
    best = float("inf")
    for partition in all_partitions(list(range(num_records))):
        clustering = Clustering(partition)
        cost = lambda_objective(
            clustering, confidences,
            lambda a, b: confidences.get((min(a, b), max(a, b)), 0.0),
        )
        best = min(best, cost)
    return best


def random_instance(seed, num_records=6, density=0.5):
    rng = random.Random(seed)
    confidences = {}
    for i in range(num_records):
        for j in range(i + 1, num_records):
            if rng.random() < density:
                confidences[(i, j)] = rng.choice(
                    (0.1, 0.25, 0.4, 0.6, 0.75, 0.9)
                )
    return confidences


@pytest.mark.parametrize("seed", range(8))
def test_expected_pivot_cost_within_guarantee(seed):
    num_records = 6
    confidences = random_instance(seed, num_records)
    if not confidences:
        pytest.skip("degenerate empty instance")
    optimum = optimal_lambda(num_records, confidences)
    candidates = make_candidates({pair: 0.8 for pair in confidences})

    total = 0.0
    runs = 150
    for run in range(runs):
        permutation = Permutation.random(range(num_records),
                                         seed=seed * 1000 + run)
        clustering = crowd_pivot(
            range(num_records), candidates, scripted_oracle(confidences),
            permutation=permutation,
        )
        total += lambda_objective(
            clustering, confidences,
            lambda a, b: confidences.get((min(a, b), max(a, b)), 0.0),
        )
    average = total / runs
    # 5-approximation in expectation; allow sampling slack.
    assert average <= 5.0 * optimum + 0.35


def test_pivot_exact_on_consistent_instance():
    """When the crowd is perfectly consistent (0/1 confidences matching a
    true clustering), Pivot recovers the optimum (cost 0) regardless of
    the permutation."""
    # True clusters {0,1,2} and {3,4}; all pairs present.
    confidences = {}
    for i in range(5):
        for j in range(i + 1, 5):
            same = (i < 3) == (j < 3)
            confidences[(i, j)] = 1.0 if same else 0.0
    candidates = make_candidates({pair: 0.8 for pair in confidences})
    for order in itertools.permutations(range(5)):
        clustering = crowd_pivot(
            range(5), candidates, scripted_oracle(confidences),
            permutation=Permutation(list(order)),
        )
        assert clustering.as_sets() == [
            frozenset({0, 1, 2}), frozenset({3, 4})
        ]
