"""Tests for repro.eval.ascii."""

from repro.eval.ascii import bar_chart, series_chart, sparkline


class TestBarChart:
    def test_proportional_bars(self):
        chart = bar_chart({"full": 1.0, "half": 0.5}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_aligned(self):
        chart = bar_chart({"a": 1.0, "longer": 1.0}, width=4)
        lines = chart.splitlines()
        bar_positions = [line.index("█") for line in lines]
        assert len(set(bar_positions)) == 1

    def test_empty(self):
        assert bar_chart({}) == ""

    def test_all_zero_values(self):
        chart = bar_chart({"a": 0.0}, width=10)
        assert "█" not in chart

    def test_value_format(self):
        chart = bar_chart({"x": 0.125}, width=4, value_format="{:.1%}")
        assert "12.5%" in chart


class TestSparkline:
    def test_monotone_series(self):
        assert sparkline([1, 2, 3]) == "▁▄█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_preserved(self):
        assert len(sparkline(list(range(17)))) == 17


class TestSeriesChart:
    def test_ordered_labels(self):
        chart = series_chart([("0.1", 10.0), ("0.2", 5.0)], width=8)
        lines = chart.splitlines()
        assert lines[0].startswith("0.1")
        assert lines[1].startswith("0.2")
