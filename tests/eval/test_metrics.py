"""Tests for repro.eval.metrics."""

import pytest

from repro.core.clustering import Clustering
from repro.datasets.schema import GoldStandard
from repro.eval.metrics import (
    PairwiseScores,
    cluster_exact_match_rate,
    cluster_size_histogram,
    clustering_from_sets,
    f1_score,
    pairwise_scores,
)


@pytest.fixture
def gold():
    return GoldStandard({0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 2})


class TestPairwiseScores:
    def test_perfect_clustering(self, gold):
        clustering = Clustering([{0, 1, 2}, {3, 4}, {5}])
        scores = pairwise_scores(clustering, gold)
        assert scores.precision == 1.0
        assert scores.recall == 1.0
        assert scores.f1 == 1.0

    def test_all_singletons(self, gold):
        clustering = Clustering.singletons(range(6))
        scores = pairwise_scores(clustering, gold)
        assert scores.true_positives == 0
        assert scores.false_negatives == 4  # 3 + 1 gold pairs
        assert scores.recall == 0.0
        assert scores.precision == 0.0  # nothing predicted, but FN exist

    def test_everything_merged(self, gold):
        clustering = Clustering([set(range(6))])
        scores = pairwise_scores(clustering, gold)
        assert scores.recall == 1.0
        assert scores.precision == pytest.approx(4 / 15)

    def test_mixed_counts(self, gold):
        clustering = Clustering([{0, 1, 3}, {2}, {4}, {5}])
        scores = pairwise_scores(clustering, gold)
        assert scores.true_positives == 1   # (0,1)
        assert scores.false_positives == 2  # (0,3), (1,3)
        assert scores.false_negatives == 3  # (0,2), (1,2), (3,4)

    def test_f1_harmonic_mean(self):
        scores = PairwiseScores(true_positives=1, false_positives=1,
                                false_negatives=1)
        assert scores.f1 == pytest.approx(0.5)

    def test_empty_gold_recall_is_one(self):
        gold = GoldStandard({0: 0, 1: 1})
        clustering = Clustering.singletons([0, 1])
        scores = pairwise_scores(clustering, gold)
        assert scores.recall == 1.0
        assert scores.precision == 1.0
        assert scores.f1 == 1.0

    def test_f1_zero_when_no_overlap(self, gold):
        clustering = Clustering([{0, 3}, {1, 4}, {2, 5}])
        assert f1_score(clustering, gold) == 0.0


class TestClusterLevel:
    def test_exact_match_rate(self, gold):
        clustering = Clustering([{0, 1, 2}, {3}, {4}, {5}])
        # {0,1,2} and {5} match gold entities exactly; {3,4} does not.
        assert cluster_exact_match_rate(clustering, gold) == pytest.approx(2 / 3)

    def test_size_histogram(self):
        clustering = Clustering([{0, 1, 2}, {3, 4}, {5}, {6}])
        assert cluster_size_histogram(clustering) == {3: 1, 2: 1, 1: 2}

    def test_from_sets(self):
        clustering = clustering_from_sets([[0, 1], [2]])
        assert clustering.together(0, 1)
        assert len(clustering) == 2
