"""Tests for repro.eval.cluster_metrics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.clustering import Clustering
from repro.datasets.schema import GoldStandard
from repro.eval.cluster_metrics import (
    adjusted_rand_index,
    bcubed_scores,
    full_report,
    normalized_mutual_information,
    variation_of_information,
)


@pytest.fixture
def gold():
    return GoldStandard({0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 2})


def perfect(gold):
    return Clustering([{0, 1, 2}, {3, 4}, {5}])


class TestBCubed:
    def test_perfect(self, gold):
        assert bcubed_scores(perfect(gold), gold) == (1.0, 1.0, 1.0)

    def test_all_singletons(self, gold):
        precision, recall, f1 = bcubed_scores(
            Clustering.singletons(range(6)), gold
        )
        assert precision == 1.0
        # Recall per record = 1/|entity|: (3*(1/3) + 2*(1/2) + 1) / 6 = 0.5
        assert recall == pytest.approx(0.5)
        assert f1 == pytest.approx(2 / 3)

    def test_everything_merged(self, gold):
        precision, recall, f1 = bcubed_scores(
            Clustering([set(range(6))]), gold
        )
        assert recall == 1.0
        # Precision per record = |entity|/6: (3*(3/6)+2*(2/6)+1*(1/6))/6
        assert precision == pytest.approx((3 * 0.5 + 2 * (2 / 6) + 1 / 6) / 6)

    def test_known_mixed_case(self, gold):
        clustering = Clustering([{0, 1}, {2, 3}, {4, 5}])
        precision, recall, _ = bcubed_scores(clustering, gold)
        # Precision: records 0,1 -> 1; 2,3 -> 1/2; 4,5 -> 1/2 => (2+2)/6
        assert precision == pytest.approx(4 / 6)


class TestAdjustedRand:
    def test_perfect_is_one(self, gold):
        assert adjusted_rand_index(perfect(gold), gold) == pytest.approx(1.0)

    def test_singletons_near_zero(self, gold):
        # Singletons predict no pairs: ARI is 0 (chance level).
        value = adjusted_rand_index(Clustering.singletons(range(6)), gold)
        assert abs(value) < 1e-9

    def test_worse_than_chance_negative_possible(self):
        gold = GoldStandard({0: 0, 1: 0, 2: 1, 3: 1})
        # Systematically anti-correlated clustering.
        clustering = Clustering([{0, 2}, {1, 3}])
        assert adjusted_rand_index(clustering, gold) < 0.0

    def test_single_record(self):
        gold = GoldStandard({0: 0})
        assert adjusted_rand_index(Clustering([{0}]), gold) == 1.0


class TestNMI:
    def test_perfect_is_one(self, gold):
        assert normalized_mutual_information(perfect(gold), gold) == pytest.approx(1.0)

    def test_everything_merged_is_zero_information(self, gold):
        value = normalized_mutual_information(Clustering([set(range(6))]), gold)
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_range(self, gold):
        clustering = Clustering([{0, 3}, {1, 4}, {2, 5}])
        assert 0.0 <= normalized_mutual_information(clustering, gold) <= 1.0


class TestVariationOfInformation:
    def test_perfect_is_zero(self, gold):
        assert variation_of_information(perfect(gold), gold) == pytest.approx(0.0)

    def test_positive_for_different_partitions(self, gold):
        clustering = Clustering([set(range(6))])
        assert variation_of_information(clustering, gold) > 0.0

    def test_bounded_by_log_n(self, gold):
        clustering = Clustering([{0, 4}, {1, 5}, {2}, {3}])
        assert variation_of_information(clustering, gold) <= 2 * math.log(6)


class TestFullReport:
    def test_keys_and_consistency(self, gold):
        report = full_report(perfect(gold), gold)
        assert report["pairwise_f1"] == 1.0
        assert report["bcubed_f1"] == 1.0
        assert report["adjusted_rand_index"] == pytest.approx(1.0)
        assert report["num_clusters"] == 3.0
        assert set(report) >= {
            "pairwise_precision", "bcubed_recall", "nmi",
            "variation_of_information",
        }


@given(st.lists(st.integers(0, 3), min_size=2, max_size=12),
       st.lists(st.integers(0, 3), min_size=2, max_size=12))
def test_metric_ranges_on_random_partitions(gold_labels, predicted_labels):
    size = min(len(gold_labels), len(predicted_labels))
    gold = GoldStandard({i: gold_labels[i] for i in range(size)})
    by_label = {}
    for i in range(size):
        by_label.setdefault(predicted_labels[i], set()).add(i)
    clustering = Clustering(by_label.values())

    precision, recall, f1 = bcubed_scores(clustering, gold)
    assert 0.0 <= precision <= 1.0
    assert 0.0 <= recall <= 1.0
    assert 0.0 <= f1 <= 1.0
    assert -1.0 <= adjusted_rand_index(clustering, gold) <= 1.0 + 1e-9
    assert 0.0 <= normalized_mutual_information(clustering, gold) <= 1.0
    assert variation_of_information(clustering, gold) >= 0.0
