"""Tests for repro.eval.crowd_analysis."""

import pytest

from repro.datasets.schema import GoldStandard
from repro.eval.crowd_analysis import (
    calibration_curve,
    confidence_histogram,
    disagreement_pairs,
    unanimity_rate,
)


class TestConfidenceHistogram:
    def test_buckets_by_vote_level(self):
        histogram = confidence_histogram([0.0, 1 / 3, 1 / 3, 1.0],
                                         num_workers=3)
        assert histogram == {0.0: 1, 1 / 3: 2, 1.0: 1}

    def test_rounds_float_noise_to_levels(self):
        histogram = confidence_histogram([0.3333333333], num_workers=3)
        assert list(histogram) == [1 / 3]

    def test_empty(self):
        assert confidence_histogram([]) == {}


class TestUnanimity:
    def test_mixed(self):
        assert unanimity_rate([0.0, 1.0, 2 / 3, 1 / 3]) == 0.5

    def test_empty_is_one(self):
        assert unanimity_rate([]) == 1.0


class TestCalibrationCurve:
    def test_bands_capture_means(self):
        answered = {(0, 1): 0.1, (2, 3): 0.2, (4, 5): 0.9}
        machine = {(0, 1): 0.35, (2, 3): 0.38, (4, 5): 0.85}
        bands = calibration_curve(answered, machine, num_bands=10)
        assert len(bands) == 2
        low_band = bands[0]
        assert low_band.lower == 0.3
        assert low_band.count == 2
        assert low_band.mean_confidence == pytest.approx(0.15)

    def test_error_rates_with_gold(self):
        gold = GoldStandard({0: 0, 1: 0, 2: 1, 3: 2})
        # (0,1) true dup answered 0.9 (right); (2,3) non-dup answered 0.8
        # (wrong).
        answered = {(0, 1): 0.9, (2, 3): 0.8}
        machine = {(0, 1): 0.55, (2, 3): 0.52}
        bands = calibration_curve(answered, machine, gold=gold, num_bands=2)
        assert len(bands) == 1
        assert bands[0].error_rate == pytest.approx(0.5)

    def test_no_gold_means_no_error_rates(self):
        bands = calibration_curve({(0, 1): 0.5}, {(0, 1): 0.5}, num_bands=4)
        assert bands[0].error_rate is None

    def test_pairs_without_machine_score_skipped(self):
        bands = calibration_curve({(0, 1): 0.5}, {}, num_bands=4)
        assert bands == []

    def test_score_one_lands_in_last_band(self):
        bands = calibration_curve({(0, 1): 1.0}, {(0, 1): 1.0}, num_bands=4)
        assert bands[0].lower == 0.75

    def test_invalid_bands(self):
        with pytest.raises(ValueError):
            calibration_curve({}, {}, num_bands=0)

    def test_curve_reflects_simulated_crowd(self, tiny_paper):
        """On the Paper instance, high-machine-score pairs get higher mean
        crowd confidence than low-score pairs."""
        from repro.crowd.oracle import CrowdOracle
        oracle = CrowdOracle(tiny_paper.answers)
        oracle.ask_batch(tiny_paper.candidates.pairs)
        bands = calibration_curve(
            oracle.known_pairs(), tiny_paper.candidates.machine_scores,
            gold=tiny_paper.dataset.gold, num_bands=5,
        )
        assert len(bands) >= 2
        assert bands[-1].mean_confidence > bands[0].mean_confidence


class TestDisagreementPairs:
    def test_contested_band_selected(self):
        answered = {(0, 1): 0.5, (2, 3): 1.0, (4, 5): 0.65, (6, 7): 0.0}
        assert disagreement_pairs(answered) == [(0, 1), (4, 5)]

    def test_sorted_by_ambiguity(self):
        answered = {(0, 1): 0.68, (2, 3): 0.52}
        assert disagreement_pairs(answered) == [(2, 3), (0, 1)]
