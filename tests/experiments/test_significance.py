"""Tests for repro.experiments.significance."""

import pytest

from repro.experiments.significance import (
    BootstrapResult,
    paired_bootstrap,
    summarize,
)


class TestSummarize:
    def test_mean_and_std(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.std == pytest.approx(1.0)
        assert stats.count == 3

    def test_interval_contains_mean(self):
        stats = summarize([0.8, 0.9, 0.85, 0.95])
        lo, hi = stats.interval
        assert lo < stats.mean < hi

    def test_single_value(self):
        stats = summarize([0.5])
        assert stats.mean == 0.5
        assert stats.confidence_half_width == 0.0

    def test_identical_values_zero_width(self):
        stats = summarize([0.7, 0.7, 0.7])
        assert stats.std == pytest.approx(0.0, abs=1e-12)
        assert stats.confidence_half_width == pytest.approx(0.0, abs=1e-12)

    def test_higher_confidence_wider_interval(self):
        values = [0.1, 0.5, 0.9, 0.3]
        narrow = summarize(values, confidence=0.90)
        wide = summarize(values, confidence=0.99)
        assert wide.confidence_half_width > narrow.confidence_half_width

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_unsupported_confidence(self):
        with pytest.raises(ValueError):
            summarize([1.0], confidence=0.5)

    def test_str_format(self):
        assert "±" in str(summarize([1.0, 2.0]))


class TestPairedBootstrap:
    def test_clear_difference_is_significant(self):
        a = [0.9, 0.92, 0.91, 0.93, 0.9, 0.92]
        b = [0.5, 0.52, 0.49, 0.51, 0.5, 0.53]
        result = paired_bootstrap(a, b, resamples=2000, seed=1)
        assert result.mean_difference == pytest.approx(0.4, abs=0.02)
        assert result.significant(alpha=0.05)

    def test_no_difference_not_significant(self):
        a = [0.5, 0.6, 0.4, 0.55, 0.45, 0.5]
        b = [0.5, 0.4, 0.6, 0.45, 0.55, 0.52]
        result = paired_bootstrap(a, b, resamples=2000, seed=1)
        assert not result.significant(alpha=0.05)

    def test_deterministic_given_seed(self):
        a, b = [0.9, 0.8, 0.85], [0.7, 0.75, 0.72]
        first = paired_bootstrap(a, b, resamples=500, seed=3)
        second = paired_bootstrap(a, b, resamples=500, seed=3)
        assert first.p_value == second.p_value

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap([], [])

    def test_symmetry(self):
        a, b = [0.9, 0.8, 0.85, 0.95], [0.7, 0.75, 0.72, 0.74]
        forward = paired_bootstrap(a, b, resamples=1000, seed=5)
        backward = paired_bootstrap(b, a, resamples=1000, seed=5)
        assert forward.mean_difference == pytest.approx(
            -backward.mean_difference
        )
        assert forward.p_value == backward.p_value


class TestIntegrationWithRunner:
    def test_acd_beats_pcpivot_significantly_on_paper(self, tiny_paper):
        """The headline claim survives a paired significance test on the
        hard dataset."""
        from repro.experiments.runner import run_method
        acd = [run_method("ACD", tiny_paper, seed=s).f1 for s in range(6)]
        pivot = [run_method("PC-Pivot", tiny_paper, seed=s).f1
                 for s in range(6)]
        result = paired_bootstrap(acd, pivot, resamples=2000, seed=0)
        assert result.mean_difference > 0
        assert result.significant(alpha=0.05)
