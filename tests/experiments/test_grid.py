"""Tests for repro.experiments.grid (resumable experiment grids)."""

import json

import pytest

from repro.experiments.grid import (
    GridCell,
    ResultStore,
    grid_cells,
    run_grid,
)
from repro.experiments.runner import MethodResult


def sample_results():
    return {
        "ACD": MethodResult("ACD", 0.9, 0.95, 0.85, 120, 12, 6, 40),
        "TransM": MethodResult("TransM", 0.7, 0.6, 0.8, 130, 9, 7, 35),
    }


class TestGridCell:
    def test_key_is_unique_per_configuration(self):
        a = GridCell("paper", "3w", 1.0, 1, 3)
        b = GridCell("paper", "3w", 1.0, 2, 3)
        assert a.key() != b.key()

    def test_key_stable(self):
        cell = GridCell("paper", "5w", 0.5, 1, 3)
        assert cell.key() == GridCell("paper", "5w", 0.5, 1, 3).key()


class TestGridCells:
    def test_factorial(self):
        cells = grid_cells(["a", "b"], ["3w", "5w"], scale=0.5)
        assert len(cells) == 4
        assert {cell.dataset for cell in cells} == {"a", "b"}
        assert all(cell.scale == 0.5 for cell in cells)


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "grid.json")
        cell = GridCell("paper", "3w", 1.0, 1, 3)
        store.put(cell, sample_results())
        reloaded = ResultStore(tmp_path / "grid.json")
        assert cell in reloaded
        results = reloaded.get(cell)
        assert results["ACD"].f1 == 0.9
        assert results["TransM"].pairs_issued == 130

    def test_missing_cell_is_none(self, tmp_path):
        store = ResultStore(tmp_path / "grid.json")
        assert store.get(GridCell("x", "3w", 1.0, 1, 3)) is None

    def test_len(self, tmp_path):
        store = ResultStore(tmp_path / "grid.json")
        assert len(store) == 0
        store.put(GridCell("a", "3w", 1.0, 1, 3), sample_results())
        assert len(store) == 1

    def test_invalid_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError):
            ResultStore(path)


class TestRunGrid:
    def test_runs_and_caches(self, tmp_path):
        store = ResultStore(tmp_path / "grid.json")
        cells = grid_cells(["restaurant"], ["3w"], scale=0.05,
                           repetitions=1)
        first = run_grid(cells, store, methods=("TransM", "CrowdER+"))
        assert set(first[cells[0]]) == {"TransM", "CrowdER+"}
        assert cells[0] in store

    def test_cache_hit_skips_computation(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "grid.json")
        cells = grid_cells(["restaurant"], ["3w"], scale=0.05,
                           repetitions=1)
        run_grid(cells, store, methods=("TransM",))

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("comparison should be cached")

        monkeypatch.setattr("repro.experiments.grid.run_comparison", boom)
        again = run_grid(cells, store, methods=("TransM",))
        assert again[cells[0]]["TransM"].f1 >= 0.0

    def test_missing_method_triggers_recompute(self, tmp_path):
        store = ResultStore(tmp_path / "grid.json")
        cells = grid_cells(["restaurant"], ["3w"], scale=0.05,
                           repetitions=1)
        run_grid(cells, store, methods=("TransM",))
        # Asking for an extra method must recompute the cell.
        results = run_grid(cells, store, methods=("TransM", "CrowdER+"))
        assert "CrowdER+" in results[cells[0]]
