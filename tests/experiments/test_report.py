"""Tests for repro.experiments.report."""

import pytest

from repro.experiments.report import (
    ExperimentReport,
    full_report_for_instance,
    markdown_table,
)
from repro.experiments.runner import MethodResult
from repro.experiments.sweeps import EpsilonPoint, EpsilonSweep, ThresholdPoint


class TestMarkdownTable:
    def test_structure(self):
        table = markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_empty_rows(self):
        table = markdown_table(["x"], [])
        assert table.splitlines() == ["| x |", "|---|"]


class TestExperimentReport:
    def test_render_contains_sections(self):
        report = ExperimentReport(title="T")
        report.add_section("Alpha", "body text")
        rendered = report.render()
        assert rendered.startswith("# T")
        assert "## Alpha" in rendered
        assert "body text" in rendered

    def test_add_comparison(self):
        report = ExperimentReport()
        report.add_comparison("Methods", {
            "ACD": MethodResult("ACD", 0.9, 0.95, 0.85, 100, 10, 5, 50),
        })
        rendered = report.render()
        assert "| ACD | 0.900 |" in rendered

    def test_add_epsilon_sweep(self):
        report = ExperimentReport()
        report.add_epsilon_sweep("Eps", EpsilonSweep(
            points=[EpsilonPoint(0.1, 12.0, 300.0)],
            crowd_pivot_iterations=80.0, crowd_pivot_pairs=290.0,
        ))
        rendered = report.render()
        assert "| 0.1 | 12.0 | 300 |" in rendered
        assert "Crowd-Pivot" in rendered

    def test_add_threshold_sweep(self):
        report = ExperimentReport()
        report.add_threshold_sweep("T", [
            ThresholdPoint(8.0, 0.9, 100.0, 3.0, 500.0),
        ])
        assert "N_m/8" in report.render()


class TestFullReport:
    def test_end_to_end(self, tiny_restaurant):
        text = full_report_for_instance(
            tiny_restaurant, repetitions=1, include_sweeps=False
        )
        assert "# ACD reproduction — restaurant (3w)" in text
        assert "Method comparison" in text
        assert "| ACD |" in text

    def test_sweeps_included_when_requested(self, tiny_restaurant):
        text = full_report_for_instance(
            tiny_restaurant, repetitions=1, include_sweeps=True
        )
        assert "ε sweep" in text
        assert "T sweep" in text


class TestCliReport:
    def test_report_command_to_file(self, tmp_path, capsys):
        from repro.cli import main
        output = tmp_path / "report.md"
        assert main([
            "report", "restaurant", "--scale", "0.05",
            "--repetitions", "1", "--no-sweeps", "--output", str(output),
        ]) == 0
        assert output.exists()
        assert "Method comparison" in output.read_text()
