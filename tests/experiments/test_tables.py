"""Tests for repro.experiments.tables."""

import pytest

from repro.experiments.runner import prepare_instance, run_comparison
from repro.experiments.sweeps import EpsilonPoint, EpsilonSweep, ThresholdPoint
from repro.experiments.tables import (
    format_comparison,
    format_epsilon_sweep,
    format_table,
    format_threshold_sweep,
    table3_row,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["col", "x"], [["value", "1"], ["v", "22"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")
        assert set(lines[1]) <= {"-", " "}

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestTable3Row:
    def test_row_fields(self):
        row = table3_row("restaurant", scale=0.05, seed=1)
        assert set(row) == {
            "records", "entities", "candidate_pairs", "error_3w", "error_5w"
        }
        assert row["records"] > row["entities"]
        assert 0.0 <= row["error_3w"] <= 1.0

    def test_error_ordering_between_datasets(self):
        paper = table3_row("paper", scale=0.08, seed=1)
        restaurant = table3_row("restaurant", scale=0.08, seed=1)
        assert paper["error_3w"] > restaurant["error_3w"]


class TestFormatters:
    def test_format_comparison(self, tiny_restaurant):
        results = run_comparison(tiny_restaurant, methods=("TransM",),
                                 repetitions=1)
        text = format_comparison(results)
        assert "TransM" in text
        assert "F1" in text

    def test_format_epsilon_sweep(self):
        sweep = EpsilonSweep(
            points=[EpsilonPoint(0.1, 10.0, 100.0)],
            crowd_pivot_iterations=50.0,
            crowd_pivot_pairs=90.0,
        )
        text = format_epsilon_sweep(sweep)
        assert "0.1" in text
        assert "Crowd-Pivot" in text

    def test_format_threshold_sweep(self):
        points = [ThresholdPoint(8.0, 0.9, 120.0, 3.0, 500.0)]
        text = format_threshold_sweep(points)
        assert "N_m/8" in text
        assert "0.900" in text
