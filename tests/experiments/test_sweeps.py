"""Tests for repro.experiments.sweeps (the ε and T experiments)."""

import pytest

from repro.experiments.sweeps import epsilon_sweep, threshold_sweep


class TestEpsilonSweep:
    @pytest.fixture(scope="class")
    def sweep(self, request):
        instance = request.getfixturevalue("tiny_restaurant")
        return epsilon_sweep(instance, epsilons=(0.0, 0.1, 0.8),
                             repetitions=2)

    def test_points_cover_requested_epsilons(self, sweep):
        assert [point.epsilon for point in sweep.points] == [0.0, 0.1, 0.8]

    def test_parallel_beats_sequential(self, sweep):
        """Figure 5's headline: PC-Pivot needs far fewer crowd iterations
        than Crowd-Pivot at every ε."""
        for point in sweep.points:
            assert point.iterations < sweep.crowd_pivot_iterations

    def test_iterations_decrease_with_epsilon(self, sweep):
        iterations = [point.iterations for point in sweep.points]
        assert iterations[0] >= iterations[1] >= iterations[2]

    def test_pairs_increase_with_epsilon(self, sweep):
        """Figure 5(d): a larger waste budget costs more crowdsourced pairs."""
        pairs = [point.pairs_issued for point in sweep.points]
        assert pairs[0] <= pairs[2]

    def test_sequential_issues_no_wasted_pairs(self, sweep):
        """Crowd-Pivot never wastes pairs, so its pair count lower-bounds
        every ε point (up to randomization noise averaged out here)."""
        for point in sweep.points:
            assert point.pairs_issued >= sweep.crowd_pivot_pairs - 1e-9


class TestThresholdSweep:
    @pytest.fixture(scope="class")
    def points(self, request):
        instance = request.getfixturevalue("tiny_paper")
        return threshold_sweep(instance, divisors=(2.0, 8.0), repetitions=2)

    def test_points_cover_divisors(self, points):
        assert [point.divisor for point in points] == [2.0, 8.0]

    def test_f1_insensitive_to_divisor(self, points):
        """Figure 10(b): F1 is roughly flat in T."""
        assert abs(points[0].f1 - points[1].f1) < 0.12

    def test_measurements_positive(self, points):
        for point in points:
            assert point.total_pairs > 0
            assert point.f1 > 0
