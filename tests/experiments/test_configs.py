"""Tests for repro.experiments.configs."""

import pytest

from repro.experiments.configs import (
    CROWD_SETTINGS,
    DIFFICULTY_MODELS,
    FIVE_WORKERS,
    THREE_WORKERS,
    WORKER_SETTINGS,
    crowd_setting,
    difficulty_model,
)


class TestCrowdSettings:
    def test_paper_3w_setting(self):
        setting = crowd_setting(THREE_WORKERS)
        assert setting.num_workers == 3
        assert setting.pairs_per_hit == 20
        assert setting.reward_cents_per_hit == 2.0

    def test_paper_5w_setting(self):
        setting = crowd_setting(FIVE_WORKERS)
        assert setting.num_workers == 5
        assert setting.pairs_per_hit == 10

    def test_unknown_setting(self):
        with pytest.raises(KeyError):
            crowd_setting("7w")

    def test_all_settings_registered(self):
        assert set(WORKER_SETTINGS) == set(CROWD_SETTINGS)


class TestDifficultyModels:
    def test_every_dataset_covered(self):
        for name in ("paper", "restaurant", "product"):
            assert difficulty_model(name) is DIFFICULTY_MODELS[name]

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            difficulty_model("imaginary")

    def test_hardness_ordering(self):
        """Paper must be harder than Product, Product harder than Restaurant
        (Table 3's error ordering)."""
        def roughness(name):
            model = difficulty_model(name)
            return model.hard_fraction + model.easy_error
        assert roughness("paper") > roughness("product") > roughness("restaurant")
