"""Tests for repro.experiments.cost_model."""

import pytest

from repro.crowd.latency import LatencyModel
from repro.crowd.stats import CrowdStats
from repro.experiments.cost_model import (
    CostSummary,
    compare_costs,
    summarize_costs,
)


def stats_with_batches(*sizes, pairs_per_hit=20, num_workers=3):
    stats = CrowdStats(pairs_per_hit=pairs_per_hit, num_workers=num_workers)
    for size in sizes:
        stats.record_batch(size)
    return stats


class TestSummarizeCosts:
    def test_counters_copied(self):
        stats = stats_with_batches(40, 15)
        summary = summarize_costs(stats)
        assert summary.pairs == 55
        assert summary.iterations == 2
        assert summary.hits == 2 + 1

    def test_dollars_from_cents(self):
        stats = stats_with_batches(40)  # 2 HITs x 3 workers x 2c = 12c
        assert summarize_costs(stats).dollars == pytest.approx(0.12)

    def test_latency_accumulates_batches(self):
        stats = stats_with_batches(40, 15)
        model = LatencyModel(seed=3)
        summary = summarize_costs(stats, latency=model)
        assert summary.seconds == pytest.approx(
            model.total_seconds([40, 15])
        )

    def test_default_latency_matches_settings(self):
        stats = stats_with_batches(10, pairs_per_hit=10, num_workers=5)
        summary = summarize_costs(stats)
        assert summary.seconds > 0

    def test_str_and_duration(self):
        summary = CostSummary(pairs=10, hits=1, iterations=1,
                              dollars=0.06, seconds=300.0)
        assert "$0.06" in str(summary)
        assert summary.duration == "5m"


class TestCompareCosts:
    def test_per_method_summaries(self):
        summaries = compare_costs({
            "A": stats_with_batches(100),
            "B": stats_with_batches(10, 10),
        })
        assert summaries["A"].pairs == 100
        assert summaries["B"].iterations == 2

    def test_real_run_costs(self, tiny_restaurant):
        """An actual ACD run produces a coherent cost projection."""
        from repro.experiments.runner import run_method
        from repro.core.acd import run_acd
        result = run_acd(
            tiny_restaurant.record_ids, tiny_restaurant.candidates,
            tiny_restaurant.answers, seed=3,
        )
        summary = summarize_costs(result.stats)
        assert summary.pairs == result.stats.pairs_issued
        assert summary.seconds > 0
        assert summary.dollars > 0
