"""Tests for repro.experiments.robustness."""

import pytest

from repro.experiments.robustness import (
    RobustnessPoint,
    degradation,
    error_sweep,
)


@pytest.fixture(scope="module")
def sweep(request):
    instance = request.getfixturevalue("tiny_product")
    return error_sweep(
        instance.dataset, instance.candidates,
        easy_errors=(0.0, 0.3), methods=("ACD", "TransM"),
        repetitions=1,
    )


# Make the session fixture reachable from a module-scoped fixture.
@pytest.fixture(scope="module")
def tiny_product(request):
    from repro.experiments.runner import prepare_instance
    return prepare_instance("product", "3w", scale=0.1, seed=3)


class TestErrorSweep:
    def test_points_per_level(self, sweep):
        assert [point.easy_error for point in sweep] == [0.0, 0.3]

    def test_zero_error_has_zero_measured_error(self, sweep):
        assert sweep[0].measured_error == 0.0

    def test_measured_error_grows(self, sweep):
        assert sweep[1].measured_error > sweep[0].measured_error

    def test_methods_present(self, sweep):
        for point in sweep:
            assert set(point.f1_by_method) == {"ACD", "TransM"}

    def test_f1_degrades_with_errors(self, sweep):
        for method in ("ACD", "TransM"):
            assert (sweep[1].f1_by_method[method]
                    <= sweep[0].f1_by_method[method] + 0.05)

    def test_unknown_method_rejected(self, tiny_product):
        with pytest.raises(ValueError):
            error_sweep(tiny_product.dataset, tiny_product.candidates,
                        easy_errors=(0.1,), methods=("Nope",),
                        repetitions=1)


class TestDegradation:
    def test_difference_of_endpoints(self):
        points = [
            RobustnessPoint(0.0, 0.0, {"X": 0.9}),
            RobustnessPoint(0.3, 0.2, {"X": 0.6}),
        ]
        assert degradation(points, "X") == pytest.approx(0.3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            degradation([], "X")
