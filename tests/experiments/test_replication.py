"""Tests for repro.experiments.replication."""

import pytest

from repro.experiments.replication import replicate


class TestReplicate:
    @pytest.fixture(scope="class")
    def report(self):
        return replicate(scale=0.05, seed=2, repetitions=1,
                         settings=("3w",), datasets=("restaurant",),
                         include_sweeps=True)

    def test_contains_all_sections(self, report):
        assert "Table 3" in report
        assert "Figures 6-8 — restaurant (3w)" in report
        assert "Figure 5 — ε sweep — restaurant" in report
        assert "Figure 10 — T sweep — restaurant" in report

    def test_table3_has_the_dataset_row(self, report):
        assert "| restaurant |" in report

    def test_comparison_has_all_methods(self, report):
        for method in ("ACD", "PC-Pivot", "CrowdER+", "GCER", "TransM",
                       "TransNode"):
            assert f"| {method} |" in report

    def test_progress_callback_fires(self):
        lines = []
        replicate(scale=0.05, seed=2, repetitions=1, settings=("3w",),
                  datasets=("restaurant",), include_sweeps=False,
                  progress=lines.append)
        assert any("table3" in line for line in lines)
        assert any("comparison" in line for line in lines)

    def test_cli_replicate(self, tmp_path, capsys):
        from repro.cli import main
        output = tmp_path / "replication.md"
        assert main([
            "replicate", "--scale", "0.05", "--repetitions", "1",
            "--no-sweeps", "--output", str(output),
        ]) == 0
        text = output.read_text()
        assert "Table 3" in text
        assert "Figures 6-8 — paper (3w)" in text
