"""Tests for repro.experiments.runner."""

import pytest

from repro.experiments.runner import (
    ACD_METHOD,
    ALL_METHODS,
    CROWDER_METHOD,
    CROWD_PIVOT_METHOD,
    GCER_METHOD,
    MethodResult,
    PC_PIVOT_METHOD,
    TRANSM_METHOD,
    TRANSNODE_METHOD,
    average_results,
    prepare_instance,
    run_comparison,
    run_method,
)


class TestPrepareInstance:
    def test_deterministic(self):
        a = prepare_instance("restaurant", "3w", scale=0.05, seed=2)
        b = prepare_instance("restaurant", "3w", scale=0.05, seed=2)
        assert a.candidates.pairs == b.candidates.pairs

    def test_settings_flow_through(self):
        instance = prepare_instance("restaurant", "5w", scale=0.05, seed=2)
        assert instance.setting.num_workers == 5
        assert instance.answers.num_workers == 5

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            prepare_instance("bogus", "3w")


class TestRunMethod:
    @pytest.mark.parametrize("method", [
        ACD_METHOD, PC_PIVOT_METHOD, CROWD_PIVOT_METHOD, CROWDER_METHOD,
        TRANSM_METHOD, TRANSNODE_METHOD,
    ])
    def test_each_method_runs(self, tiny_restaurant, method):
        result = run_method(method, tiny_restaurant, seed=1)
        assert result.method == method
        assert 0.0 <= result.f1 <= 1.0
        assert result.pairs_issued >= 0
        assert result.clustering is not None
        assert result.clustering.num_records == len(tiny_restaurant.dataset)

    def test_gcer_needs_budget(self, tiny_restaurant):
        with pytest.raises(ValueError):
            run_method(GCER_METHOD, tiny_restaurant)

    def test_gcer_with_budget(self, tiny_restaurant):
        result = run_method(GCER_METHOD, tiny_restaurant, gcer_budget=30)
        assert result.pairs_issued <= 30

    def test_unknown_method(self, tiny_restaurant):
        with pytest.raises(ValueError):
            run_method("Magic", tiny_restaurant)

    def test_methods_share_answers_but_not_costs(self, tiny_restaurant):
        first = run_method(CROWDER_METHOD, tiny_restaurant)
        second = run_method(CROWDER_METHOD, tiny_restaurant)
        assert first.pairs_issued == second.pairs_issued
        assert first.f1 == second.f1


class TestAverageResults:
    def test_mean_computed(self):
        results = [
            MethodResult("X", f1=0.8, precision=0.9, recall=0.7,
                         pairs_issued=100, iterations=10, hits=5,
                         num_clusters=50),
            MethodResult("X", f1=0.6, precision=0.7, recall=0.5,
                         pairs_issued=200, iterations=20, hits=15,
                         num_clusters=70),
        ]
        mean = average_results(results)
        assert mean.f1 == pytest.approx(0.7)
        assert mean.pairs_issued == pytest.approx(150)

    def test_mixed_methods_rejected(self):
        a = MethodResult("X", 1, 1, 1, 1, 1, 1, 1)
        b = MethodResult("Y", 1, 1, 1, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            average_results([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_results([])


class TestRunComparison:
    def test_full_comparison(self, tiny_restaurant):
        results = run_comparison(tiny_restaurant, repetitions=2)
        assert set(results) == set(ALL_METHODS)

    def test_gcer_budget_matches_acd(self, tiny_restaurant):
        results = run_comparison(
            tiny_restaurant, methods=(ACD_METHOD, GCER_METHOD), repetitions=2
        )
        assert results[GCER_METHOD].pairs_issued <= (
            results[ACD_METHOD].pairs_issued + 1
        )

    def test_subset_of_methods(self, tiny_restaurant):
        results = run_comparison(
            tiny_restaurant, methods=(TRANSM_METHOD,), repetitions=1
        )
        assert list(results) == [TRANSM_METHOD]

    def test_crowder_crowdsources_whole_candidate_set(self, tiny_restaurant):
        results = run_comparison(
            tiny_restaurant, methods=(CROWDER_METHOD,), repetitions=1
        )
        assert results[CROWDER_METHOD].pairs_issued == len(
            tiny_restaurant.candidates
        )
        assert results[CROWDER_METHOD].iterations == 1
