"""Tests for repro.pruning.analysis."""

import pytest

from repro.datasets.schema import Dataset, GoldStandard, Record
from repro.pruning.analysis import (
    PruningQuality,
    evaluate_candidates,
    threshold_tradeoff,
)
from repro.pruning.candidate import CandidateSet, build_candidate_set
from repro.similarity.composite import jaccard_similarity_function


@pytest.fixture
def dataset():
    # Entities: {0,1}, {2,3}, {4}.
    records = [
        Record(0, "alpha beta gamma"),
        Record(1, "alpha beta gamma delta"),
        Record(2, "epsilon zeta eta"),
        Record(3, "epsilon zeta theta"),
        Record(4, "iota kappa lambda alpha"),
    ]
    return Dataset(name="toy", records=records,
                   gold=GoldStandard({0: 0, 1: 0, 2: 1, 3: 1, 4: 2}))


class TestEvaluateCandidates:
    def test_perfect_candidate_set(self, dataset):
        candidates = CandidateSet(
            pairs=((0, 1), (2, 3)),
            machine_scores={(0, 1): 0.75, (2, 3): 0.5},
            threshold=0.3,
        )
        quality = evaluate_candidates(candidates, dataset)
        assert quality.recall == 1.0
        assert quality.precision == 1.0
        assert quality.num_pairs == 2
        # 2 of C(5,2)=10 pairs retained -> reduction 0.8.
        assert quality.reduction_ratio == pytest.approx(0.8)

    def test_missing_duplicate_lowers_recall(self, dataset):
        candidates = CandidateSet(
            pairs=((0, 1),), machine_scores={(0, 1): 0.75}, threshold=0.3
        )
        quality = evaluate_candidates(candidates, dataset)
        assert quality.recall == 0.5

    def test_false_candidates_lower_precision(self, dataset):
        candidates = CandidateSet(
            pairs=((0, 1), (2, 3), (0, 4)),
            machine_scores={(0, 1): 0.7, (2, 3): 0.5, (0, 4): 0.35},
            threshold=0.3,
        )
        quality = evaluate_candidates(candidates, dataset)
        assert quality.precision == pytest.approx(2 / 3)

    def test_empty_candidate_set(self, dataset):
        candidates = CandidateSet(pairs=(), machine_scores={}, threshold=0.3)
        quality = evaluate_candidates(candidates, dataset)
        assert quality.recall == 0.0
        assert quality.precision == 1.0
        assert quality.reduction_ratio == 1.0


class TestThresholdTradeoff:
    def test_recall_monotone_in_threshold(self, dataset):
        results = threshold_tradeoff(
            dataset, jaccard_similarity_function(),
            thresholds=(0.1, 0.3, 0.6),
        )
        recalls = [quality.recall for quality in results]
        sizes = [quality.num_pairs for quality in results]
        # Higher τ never increases recall or candidate count.
        assert recalls == sorted(recalls, reverse=True)
        assert sizes == sorted(sizes, reverse=True)

    def test_results_sorted_by_threshold(self, dataset):
        results = threshold_tradeoff(
            dataset, jaccard_similarity_function(), thresholds=(0.5, 0.1)
        )
        assert [quality.threshold for quality in results] == [0.1, 0.5]

    def test_paper_dataset_tau_03_recall(self):
        """On the Paper-shaped dataset, τ = 0.3 keeps most duplicates —
        the premise of the paper's pruning setting."""
        from repro.datasets.paper import generate_paper
        dataset = generate_paper(scale=0.1, seed=3)
        candidates = build_candidate_set(
            dataset.records, jaccard_similarity_function(), threshold=0.3
        )
        quality = evaluate_candidates(candidates, dataset)
        assert quality.recall > 0.85
        assert quality.reduction_ratio > 0.5
