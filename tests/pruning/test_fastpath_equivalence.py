"""Equivalence of the fast-path pruning engines with the reference loop.

The prefix-filtered join and the parallel pair scorer are optimizations,
not approximations: for every supported configuration they must produce a
byte-identical :class:`CandidateSet` (same pairs, same float scores) as the
seed's enumerate-and-score loop.  These tests pin that down on the three
paper datasets, on randomized synthetic records, and on the τ edge cases
(score == τ excluded; empty-token records).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.registry import generate
from repro.datasets.schema import Record
from repro.pruning.candidate import build_candidate_set
from repro.pruning.parallel import score_pairs_parallel
from repro.pruning.prefix_join import prefix_length
from repro.similarity.composite import (
    SimilarityFunction,
    cosine_set_similarity_function,
    dice_similarity_function,
    jaccard_similarity_function,
    overlap_similarity_function,
    qgram_similarity_function,
)
from repro.similarity.jaccard import token_jaccard

DATASETS = ("paper", "restaurant", "product")

SET_FACTORIES = (
    jaccard_similarity_function,
    cosine_set_similarity_function,
    dice_similarity_function,
    overlap_similarity_function,
)


def recs(*texts):
    return [Record(record_id=i, text=t) for i, t in enumerate(texts)]


def reference_similarity():
    """The seed's pruning metric: plain text Jaccard, no set metadata —
    guaranteed to take the reference engine's blocking + score loop."""
    return SimilarityFunction("jaccard", token_jaccard)


def assert_identical(left, right):
    assert left.pairs == right.pairs
    assert left.machine_scores == right.machine_scores
    assert left.threshold == right.threshold


class TestPrefixJoinOnDatasets:
    """Acceptance criterion: identical CandidateSet on all three datasets."""

    @pytest.mark.parametrize("dataset_name", DATASETS)
    def test_identical_to_seed_reference(self, dataset_name):
        records = generate(dataset_name, scale=0.15, seed=3).records
        reference = build_candidate_set(records, reference_similarity(),
                                        threshold=0.3, engine="reference")
        joined = build_candidate_set(records, jaccard_similarity_function(),
                                     threshold=0.3, engine="prefix")
        assert_identical(reference, joined)

    @pytest.mark.parametrize("dataset_name", DATASETS)
    def test_auto_selects_join_and_matches(self, dataset_name):
        records = generate(dataset_name, scale=0.1, seed=5).records
        auto = build_candidate_set(records, jaccard_similarity_function())
        reference = build_candidate_set(records, reference_similarity(),
                                        engine="reference")
        assert_identical(reference, auto)


short_texts = st.lists(
    st.text(alphabet="abcdefg ", min_size=0, max_size=24),
    min_size=2, max_size=16,
)


class TestPrefixJoinRandomized:
    @settings(max_examples=60, deadline=None)
    @given(texts=short_texts,
           threshold=st.sampled_from([0.0, 0.1, 0.3, 0.5, 1 / 3, 0.9]),
           factory_index=st.integers(min_value=0,
                                     max_value=len(SET_FACTORIES) - 1),
           blocking=st.booleans())
    def test_matches_reference_on_random_records(self, texts, threshold,
                                                 factory_index, blocking):
        records = recs(*texts)
        factory = SET_FACTORIES[factory_index]
        reference = build_candidate_set(
            records, factory(), threshold=threshold,
            use_token_blocking=blocking, engine="reference",
        )
        joined = build_candidate_set(
            records, factory(), threshold=threshold,
            use_token_blocking=blocking, engine="prefix",
        )
        assert_identical(reference, joined)

    @settings(max_examples=30, deadline=None)
    @given(texts=short_texts,
           threshold=st.sampled_from([0.0, 0.2, 0.5]))
    def test_qgram_join_matches_all_pairs_reference(self, texts, threshold):
        records = recs(*texts)
        reference = build_candidate_set(
            records, qgram_similarity_function(), threshold=threshold,
            use_token_blocking=False, engine="reference",
        )
        joined = build_candidate_set(
            records, qgram_similarity_function(), threshold=threshold,
            use_token_blocking=False, engine="prefix",
        )
        assert_identical(reference, joined)


class TestThresholdEdgeCases:
    def test_score_equal_to_threshold_excluded(self):
        # {a,b} vs {b,c}: jaccard exactly 1/3 — must be pruned at τ=1/3 by
        # both engines (the paper's condition is strict: f > τ).
        records = recs("a b", "b c")
        for engine in ("reference", "prefix"):
            result = build_candidate_set(
                records, jaccard_similarity_function(),
                threshold=1 / 3, engine=engine,
            )
            assert (0, 1) not in result, engine

    def test_empty_records_with_blocking(self):
        # Token blocking never pairs empty-token records; the join must not
        # re-introduce them.
        records = recs("", "", "a b")
        for engine in ("reference", "prefix"):
            result = build_candidate_set(
                records, jaccard_similarity_function(), engine=engine,
            )
            assert (0, 1) not in result, engine

    def test_empty_records_without_blocking(self):
        # All-pairs scoring gives two empty records jaccard 1.0 > τ; the
        # join must reproduce that too.
        records = recs("", "", "a b")
        reference = build_candidate_set(
            records, jaccard_similarity_function(),
            use_token_blocking=False, engine="reference",
        )
        joined = build_candidate_set(
            records, jaccard_similarity_function(),
            use_token_blocking=False, engine="prefix",
        )
        assert (0, 1) in reference and reference.machine_scores[(0, 1)] == 1.0
        assert_identical(reference, joined)

    def test_threshold_zero_keeps_any_overlap(self):
        records = recs("a b c d e f g", "g z")
        reference = build_candidate_set(records, jaccard_similarity_function(),
                                        threshold=0.0, engine="reference")
        joined = build_candidate_set(records, jaccard_similarity_function(),
                                     threshold=0.0, engine="prefix")
        assert (0, 1) in joined
        assert_identical(reference, joined)


class TestEngineSelection:
    def test_prefix_engine_rejects_non_set_metric(self):
        with pytest.raises(ValueError):
            build_candidate_set(recs("a", "b"), reference_similarity(),
                                engine="prefix")

    def test_prefix_engine_rejects_external_pairs(self):
        with pytest.raises(ValueError):
            build_candidate_set(recs("a", "a"), jaccard_similarity_function(),
                                candidate_pairs=[(0, 1)], engine="prefix")

    def test_prefix_engine_rejects_qgram_under_token_blocking(self):
        # Token blocking's word-token domain doesn't match q-gram sets; the
        # reference path (blocking off or on) is the only faithful one.
        with pytest.raises(ValueError):
            build_candidate_set(recs("ab", "cd"), qgram_similarity_function(),
                                use_token_blocking=True, engine="prefix")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            build_candidate_set(recs("a", "b"), jaccard_similarity_function(),
                                engine="warp")

    def test_auto_falls_back_for_external_pairs(self):
        records = recs("a b", "a b", "a b")
        result = build_candidate_set(records, jaccard_similarity_function(),
                                     candidate_pairs=[(0, 1)])
        assert set(result.pairs) == {(0, 1)}


class TestPrefixLength:
    def test_jaccard_prefix_shrinks_with_threshold(self):
        assert prefix_length("jaccard", 0.0, 10) == 10
        assert prefix_length("jaccard", 0.9, 10) == 2
        assert prefix_length("overlap", 0.9, 10) == 10  # no bound

    def test_at_least_one_token_probed(self):
        assert prefix_length("jaccard", 0.99, 1) == 1


class TestParallelScorer:
    @pytest.mark.parametrize("dataset_name", DATASETS)
    def test_parallel_matches_serial_on_datasets(self, dataset_name):
        records = generate(dataset_name, scale=0.1, seed=7).records
        serial = build_candidate_set(records, reference_similarity(),
                                     engine="reference")
        parallel = build_candidate_set(records, reference_similarity(),
                                       engine="reference", parallel=2)
        assert_identical(serial, parallel)

    def test_score_pairs_parallel_matches_direct_loop(self):
        records = recs("a b c", "a b d", "x y", "a y")
        texts = {r.record_id: r.text for r in records}
        pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        expected = {
            pair: token_jaccard(texts[pair[0]], texts[pair[1]])
            for pair in pairs
        }
        expected = {p: min(1.0, max(0.0, s))
                    for p, s in expected.items() if s > 0.3}
        scored = score_pairs_parallel(pairs, texts, token_jaccard,
                                      threshold=0.3, processes=2)
        assert scored == expected

    def test_serial_fallback_for_single_process(self):
        records = recs("a b", "a b")
        texts = {r.record_id: r.text for r in records}
        scored = score_pairs_parallel([(0, 1)], texts, token_jaccard,
                                      threshold=0.3, processes=1)
        assert scored == {(0, 1): 1.0}


class TestDuplicatePairScoring:
    """External candidate_pairs streams may repeat pairs; every pair must be
    scored exactly once — including sub-threshold ones (seed bug)."""

    class CountingSimilarity(SimilarityFunction):
        def __init__(self, score):
            super().__init__("count", lambda a, b: score)
            self.calls = 0

        def __call__(self, record_a, record_b):
            self.calls += 1
            return super().__call__(record_a, record_b)

    def test_sub_threshold_duplicate_not_rescored(self):
        records = recs("x", "y")
        similarity = self.CountingSimilarity(0.1)  # below τ
        result = build_candidate_set(
            records, similarity, threshold=0.3,
            candidate_pairs=[(0, 1), (1, 0), (0, 1)],
        )
        assert similarity.calls == 1
        assert len(result) == 0

    def test_surviving_duplicate_emitted_once(self):
        records = recs("x", "y")
        similarity = self.CountingSimilarity(0.9)
        result = build_candidate_set(
            records, similarity, threshold=0.3,
            candidate_pairs=[(1, 0), (0, 1)],
        )
        assert similarity.calls == 1
        assert result.pairs == ((0, 1),)
