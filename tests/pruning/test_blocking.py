"""Tests for repro.pruning.blocking."""

import pytest

from repro.datasets.schema import Record
from repro.pruning.blocking import (
    all_pairs,
    sorted_neighborhood_pairs,
    token_blocking_pairs,
)


def recs(*texts):
    return [Record(record_id=i, text=t) for i, t in enumerate(texts)]


class TestTokenBlocking:
    def test_shared_token_pairs_found(self):
        records = recs("golden cafe", "golden grill", "silver spoon")
        pairs = set(token_blocking_pairs(records))
        assert (0, 1) in pairs
        assert (0, 2) not in pairs and (1, 2) not in pairs

    def test_no_duplicates_with_multiple_shared_tokens(self):
        records = recs("a b c", "a b c")
        pairs = list(token_blocking_pairs(records))
        assert pairs == [(0, 1)]

    def test_canonical_order(self):
        records = recs("x", "x")
        assert list(token_blocking_pairs(records)) == [(0, 1)]

    def test_block_size_cap_skips_stopwords(self):
        records = recs("the cat", "the dog", "the bird")
        # 'the' block has 3 records; cap at 2 removes all pairs.
        assert list(token_blocking_pairs(records, max_block_size=2)) == []

    def test_complete_for_nonzero_jaccard(self):
        """Token blocking must not lose any pair with a shared token."""
        records = recs("a b", "b c", "c d", "d a", "e f")
        blocked = set(token_blocking_pairs(records))
        from repro.similarity.jaccard import token_jaccard
        for i, a in enumerate(records):
            for b in records[i + 1:]:
                if token_jaccard(a.text, b.text) > 0:
                    assert (a.record_id, b.record_id) in blocked

    def test_cap_keeps_pairs_with_surviving_shared_token(self):
        # 'the' is capped away but 0/1 still share the rare token 'cat'.
        records = recs("the cat", "the cat", "the dog")
        pairs = set(token_blocking_pairs(records, max_block_size=2))
        assert pairs == {(0, 1)}

    def test_least_common_token_rule_matches_naive_dedupe(self):
        """The least-common-token emission must yield exactly the pair set
        (and multiplicity 1) of the naive seen-set implementation, with and
        without a block-size cap."""
        import itertools
        import random

        from repro.similarity.tokenize import word_tokens

        rng = random.Random(17)
        vocab = [f"t{i}" for i in range(12)]
        for trial in range(30):
            records = recs(*(
                " ".join(rng.sample(vocab, rng.randint(0, 5)))
                for _ in range(rng.randint(2, 14))
            ))
            for cap in (0, 1, 2, 3):
                expected = set()
                postings = {}
                for record in records:
                    for token in set(word_tokens(record.text)):
                        postings.setdefault(token, []).append(record.record_id)
                for posting in postings.values():
                    if cap and len(posting) > cap:
                        continue
                    for a, b in itertools.combinations(sorted(posting), 2):
                        expected.add((a, b))
                emitted = list(token_blocking_pairs(records,
                                                    max_block_size=cap))
                assert len(emitted) == len(set(emitted)), "duplicate pair"
                assert set(emitted) == expected


class TestSortedNeighborhood:
    def test_window_pairs(self):
        records = recs("a", "b", "c", "d")
        pairs = set(sorted_neighborhood_pairs(records, key=lambda r: r.text,
                                              window=2))
        assert pairs == {(0, 1), (1, 2), (2, 3)}

    def test_wider_window(self):
        records = recs("a", "b", "c")
        pairs = set(sorted_neighborhood_pairs(records, key=lambda r: r.text,
                                              window=3))
        assert pairs == {(0, 1), (0, 2), (1, 2)}

    def test_sort_key_applied(self):
        records = recs("z", "a")  # sorted order: record 1 then record 0
        pairs = list(sorted_neighborhood_pairs(records, key=lambda r: r.text,
                                               window=2))
        assert pairs == [(0, 1)]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            list(sorted_neighborhood_pairs(recs("a"), key=lambda r: r.text,
                                           window=1))


class TestAllPairs:
    def test_counts(self):
        records = recs("a", "b", "c", "d")
        assert len(list(all_pairs(records))) == 6

    def test_canonical_sorted(self):
        pairs = list(all_pairs(recs("a", "b", "c")))
        assert pairs == [(0, 1), (0, 2), (1, 2)]
