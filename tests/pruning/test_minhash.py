"""Tests for repro.pruning.minhash."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.schema import Record
from repro.pruning.minhash import (
    MinHasher,
    lsh_candidate_pairs,
    minhash_blocking_pairs,
)
from repro.similarity.jaccard import jaccard
from repro.similarity.tokenize import token_set


class TestMinHasher:
    def test_identical_sets_identical_signatures(self):
        hasher = MinHasher(num_hashes=32, seed=1)
        tokens = token_set("golden cafe main st")
        assert hasher.signature(tokens) == hasher.signature(tokens)

    def test_deterministic_across_instances(self):
        tokens = token_set("a b c")
        assert MinHasher(16, seed=2).signature(tokens) == \
            MinHasher(16, seed=2).signature(tokens)

    def test_different_seeds_differ(self):
        tokens = token_set("a b c")
        assert MinHasher(16, seed=1).signature(tokens) != \
            MinHasher(16, seed=2).signature(tokens)

    def test_empty_set_signature(self):
        hasher = MinHasher(num_hashes=8)
        signature = hasher.signature(frozenset())
        assert len(set(signature)) == 1

    def test_invalid_num_hashes(self):
        with pytest.raises(ValueError):
            MinHasher(num_hashes=0)

    def test_jaccard_estimate_accuracy(self):
        """With many hashes the signature agreement approximates Jaccard."""
        hasher = MinHasher(num_hashes=512, seed=3)
        set_a = frozenset(f"tok{i}" for i in range(20))
        set_b = frozenset(f"tok{i}" for i in range(10, 30))
        true = jaccard(set_a, set_b)  # 10/30
        estimate = MinHasher.estimate_jaccard(
            hasher.signature(set_a), hasher.signature(set_b)
        )
        assert abs(estimate - true) < 0.08

    def test_estimate_requires_equal_length(self):
        with pytest.raises(ValueError):
            MinHasher.estimate_jaccard((1, 2), (1,))


class TestLshCandidatePairs:
    def test_identical_records_always_collide(self):
        hasher = MinHasher(num_hashes=64, seed=1)
        signature = hasher.signature(token_set("blue cafe paris"))
        pairs = set(lsh_candidate_pairs({0: signature, 1: signature},
                                        bands=16, rows=4))
        assert (0, 1) in pairs

    def test_disjoint_records_rarely_collide(self):
        hasher = MinHasher(num_hashes=64, seed=1)
        signatures = {
            0: hasher.signature(frozenset(f"a{i}" for i in range(10))),
            1: hasher.signature(frozenset(f"b{i}" for i in range(10))),
        }
        assert (0, 1) not in set(
            lsh_candidate_pairs(signatures, bands=16, rows=4)
        )

    def test_band_configuration_validated(self):
        hasher = MinHasher(num_hashes=8, seed=1)
        signatures = {0: hasher.signature(token_set("x"))}
        with pytest.raises(ValueError):
            list(lsh_candidate_pairs(signatures, bands=4, rows=4))

    def test_empty_input(self):
        assert list(lsh_candidate_pairs({}, bands=2, rows=2)) == []

    def test_pairs_unique_and_canonical(self):
        hasher = MinHasher(num_hashes=16, seed=1)
        signature = hasher.signature(token_set("same text"))
        pairs = list(lsh_candidate_pairs(
            {3: signature, 1: signature, 2: signature}, bands=4, rows=4
        ))
        assert len(pairs) == len(set(pairs)) == 3
        assert all(a < b for a, b in pairs)


class TestMinhashBlocking:
    def test_high_jaccard_pairs_recovered(self):
        records = [
            Record(0, "golden cafe main st san francisco italian"),
            Record(1, "golden cafe main st san francisco french"),
            Record(2, "completely different words here entirely"),
        ]
        pairs = set(minhash_blocking_pairs(records, bands=16, rows=4))
        assert (0, 1) in pairs

    def test_integrates_with_candidate_builder(self):
        from repro.pruning.candidate import build_candidate_set
        from repro.similarity.composite import jaccard_similarity_function
        records = [
            Record(0, "alpha beta gamma delta"),
            Record(1, "alpha beta gamma epsilon"),
            Record(2, "zeta eta theta iota"),
        ]
        candidates = build_candidate_set(
            records, jaccard_similarity_function(),
            candidate_pairs=minhash_blocking_pairs(records, bands=16, rows=4),
        )
        assert (0, 1) in candidates

    def test_recall_against_token_blocking(self):
        """On a realistic dataset, LSH must recover the vast majority of
        the true above-threshold pairs that token blocking finds."""
        from repro.datasets.restaurant import generate_restaurant
        from repro.pruning.candidate import build_candidate_set
        from repro.similarity.composite import jaccard_similarity_function

        dataset = generate_restaurant(scale=0.1, seed=5)
        exact = build_candidate_set(
            dataset.records, jaccard_similarity_function(), threshold=0.5
        )
        approximate = build_candidate_set(
            dataset.records, jaccard_similarity_function(), threshold=0.5,
            candidate_pairs=minhash_blocking_pairs(
                dataset.records, bands=32, rows=2
            ),
        )
        recovered = sum(1 for pair in exact.pairs if pair in approximate)
        assert recovered / max(1, len(exact)) > 0.9
