"""Tests for repro.pruning.candidate (the pruning phase)."""

import pytest

from repro.datasets.schema import Record
from repro.pruning.candidate import CandidateSet, build_candidate_set
from repro.similarity.composite import jaccard_similarity_function


def recs(*texts):
    return [Record(record_id=i, text=t) for i, t in enumerate(texts)]


class TestBuildCandidateSet:
    def test_threshold_is_strict(self):
        # tokens: {a,b,c} vs {a,b,d}: jaccard 2/4 = 0.5 > 0.3 -> kept;
        # {a,b,c} vs {a,x,y}: 1/5 = 0.2 -> pruned.
        records = recs("a b c", "a b d", "a x y")
        candidates = build_candidate_set(records, jaccard_similarity_function(),
                                         threshold=0.3)
        assert (0, 1) in candidates
        assert (0, 2) not in candidates

    def test_exact_threshold_pruned(self):
        # {a,b} vs {b,c}: 1/3 ≈ 0.333 kept at τ=0.3 but pruned at τ=1/3.
        records = recs("a b", "b c")
        kept = build_candidate_set(records, jaccard_similarity_function(),
                                   threshold=0.3)
        assert (0, 1) in kept
        pruned = build_candidate_set(records, jaccard_similarity_function(),
                                     threshold=1 / 3)
        assert (0, 1) not in pruned

    def test_scores_stored(self):
        records = recs("a b c", "a b c")
        candidates = build_candidate_set(records, jaccard_similarity_function())
        assert candidates.machine_scores[(0, 1)] == 1.0

    def test_explicit_candidate_pairs_respected(self):
        records = recs("a b", "a b", "a b")
        candidates = build_candidate_set(
            records, jaccard_similarity_function(),
            candidate_pairs=[(0, 1)],
        )
        assert (0, 1) in candidates
        assert (1, 2) not in candidates  # never scored

    def test_blocking_equals_all_pairs_for_jaccard(self):
        """Token blocking must produce the same candidate set as exhaustive
        scoring (no pair with Jaccard > τ > 0 is lost)."""
        records = recs("a b c", "b c d", "x y", "y z", "a z q")
        fast = build_candidate_set(records, jaccard_similarity_function(),
                                   use_token_blocking=True)
        slow = build_candidate_set(records, jaccard_similarity_function(),
                                   use_token_blocking=False)
        assert fast.pairs == slow.pairs

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            build_candidate_set(recs("a"), jaccard_similarity_function(),
                                threshold=1.0)

    def test_pairs_sorted(self):
        records = recs("q w", "q w", "q w")
        candidates = build_candidate_set(records, jaccard_similarity_function())
        assert list(candidates.pairs) == sorted(candidates.pairs)


class TestCandidateSet:
    def test_score_of_pruned_pair_is_zero(self):
        candidates = CandidateSet(pairs=((0, 1),),
                                  machine_scores={(0, 1): 0.7}, threshold=0.3)
        assert candidates.score(0, 1) == 0.7
        assert candidates.score(0, 9) == 0.0

    def test_contains_is_order_insensitive(self):
        candidates = CandidateSet(pairs=((0, 1),),
                                  machine_scores={(0, 1): 0.7}, threshold=0.3)
        assert (1, 0) in candidates

    def test_sorted_by_score(self):
        candidates = CandidateSet(
            pairs=((0, 1), (1, 2), (2, 3)),
            machine_scores={(0, 1): 0.5, (1, 2): 0.9, (2, 3): 0.7},
            threshold=0.3,
        )
        assert candidates.sorted_by_score() == [(1, 2), (2, 3), (0, 1)]
        assert candidates.sorted_by_score(descending=False) == [
            (0, 1), (2, 3), (1, 2)
        ]

    def test_len_and_iter(self):
        candidates = CandidateSet(pairs=((0, 1), (1, 2)),
                                  machine_scores={(0, 1): 0.5, (1, 2): 0.9},
                                  threshold=0.3)
        assert len(candidates) == 2
        assert list(candidates) == [(0, 1), (1, 2)]
