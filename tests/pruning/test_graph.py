"""Tests for repro.pruning.graph."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pruning.graph import (
    CandidateGraph,
    EagerCandidateGraph,
    graph_from_candidates,
)

TAIL_EDGES = [(0, 1), (1, 2), (0, 2), (2, 3)]


@pytest.fixture
def triangle_plus_tail():
    # 0-1-2 triangle, 2-3 tail, 4 isolated.
    return CandidateGraph(range(5), TAIL_EDGES)


class TestConstruction:
    def test_unknown_vertex_edge_rejected(self):
        with pytest.raises(ValueError):
            CandidateGraph([0, 1], [(0, 2)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            CandidateGraph([0, 1], [(0, 0)])

    def test_factory(self):
        graph = graph_from_candidates([0, 1], [(0, 1)])
        assert graph.has_edge(0, 1)


class TestQueries:
    def test_neighbors_sorted(self, triangle_plus_tail):
        assert triangle_plus_tail.neighbors(2) == (0, 1, 3)

    def test_neighbors_is_immutable(self, triangle_plus_tail):
        # Regression: neighbors() used to return a mutable list; a caller
        # mutating it could corrupt later queries.
        assert isinstance(triangle_plus_tail.neighbors(2), tuple)

    def test_degree(self, triangle_plus_tail):
        assert triangle_plus_tail.degree(2) == 3
        assert triangle_plus_tail.degree(4) == 0

    def test_neighbors_of_removed_vertex_raises(self, triangle_plus_tail):
        triangle_plus_tail.remove_vertices([2])
        with pytest.raises(KeyError):
            triangle_plus_tail.neighbors(2)

    def test_edges_enumeration(self, triangle_plus_tail):
        assert list(triangle_plus_tail.edges()) == [
            (0, 1), (0, 2), (1, 2), (2, 3)
        ]

    def test_num_edges(self, triangle_plus_tail):
        assert triangle_plus_tail.num_edges() == 4

    def test_contains(self, triangle_plus_tail):
        assert 4 in triangle_plus_tail
        triangle_plus_tail.remove_vertices([4])
        assert 4 not in triangle_plus_tail


class TestRemoval:
    def test_removal_filters_neighbors(self, triangle_plus_tail):
        triangle_plus_tail.remove_vertices([0])
        assert triangle_plus_tail.neighbors(2) == (1, 3)

    def test_removal_filters_edges(self, triangle_plus_tail):
        triangle_plus_tail.remove_vertices([2])
        assert list(triangle_plus_tail.edges()) == [(0, 1)]

    def test_len_tracks_live_vertices(self, triangle_plus_tail):
        assert len(triangle_plus_tail) == 5
        triangle_plus_tail.remove_vertices([0, 4])
        assert len(triangle_plus_tail) == 3

    def test_is_empty(self, triangle_plus_tail):
        triangle_plus_tail.remove_vertices(range(5))
        assert triangle_plus_tail.is_empty()

    def test_removing_twice_is_idempotent(self, triangle_plus_tail):
        triangle_plus_tail.remove_vertices([0])
        triangle_plus_tail.remove_vertices([0])
        assert len(triangle_plus_tail) == 4

    def test_has_edge_requires_both_alive(self, triangle_plus_tail):
        assert triangle_plus_tail.has_edge(0, 1)
        triangle_plus_tail.remove_vertices([1])
        assert not triangle_plus_tail.has_edge(0, 1)


class TestCopy:
    def test_copy_is_independent(self, triangle_plus_tail):
        clone = triangle_plus_tail.copy()
        triangle_plus_tail.remove_vertices([0, 1])
        assert len(clone) == 5
        assert clone.has_edge(0, 1)


class TestEagerCandidateGraph:
    @pytest.fixture
    def eager(self):
        return EagerCandidateGraph(range(5), TAIL_EDGES)

    def test_queries_match_lazy_class(self, eager, triangle_plus_tail):
        assert eager.neighbors(2) == triangle_plus_tail.neighbors(2)
        assert eager.degree(2) == 3
        assert eager.num_edges() == 4
        assert list(eager.edges()) == list(triangle_plus_tail.edges())

    def test_dead_vertex_queries_raise(self, eager):
        eager.remove_vertices([2])
        with pytest.raises(KeyError):
            eager.neighbors(2)
        with pytest.raises(KeyError):
            eager.degree(2)

    def test_removal_updates_counts_eagerly(self, eager):
        eager.remove_vertices([2])
        assert eager.num_edges() == 1
        assert eager.degree(0) == 1
        assert eager.neighbors(0) == (1,)
        eager.remove_vertices([0, 1])
        assert eager.num_edges() == 0

    def test_adjacent_removals_count_edges_once(self, eager):
        # (0, 1) must be decremented once even though both endpoints die
        # in the same call.
        eager.remove_vertices([0, 1])
        assert eager.num_edges() == 1
        assert eager.neighbors(2) == (3,)

    def test_removing_twice_is_idempotent(self, eager):
        eager.remove_vertices([0])
        eager.remove_vertices([0])
        assert len(eager) == 4
        assert eager.num_edges() == 2

    def test_neighbors_cache_invalidated_on_incident_removal(self, eager):
        assert eager.neighbors(2) == (0, 1, 3)
        eager.remove_vertices([3])
        assert eager.neighbors(2) == (0, 1)

    def test_cached_neighbors_cannot_be_aliased(self, eager):
        # Regression: the eager class used to hand out its cached list
        # itself, so `graph.neighbors(v).remove(x)` (or sort/append by any
        # caller) silently corrupted every later neighbors(v) query.  The
        # cache entry is now an immutable tuple.
        first = eager.neighbors(2)
        assert isinstance(first, tuple)
        with pytest.raises(AttributeError):
            first.remove(0)
        mutated = list(first)
        mutated.remove(0)
        assert eager.neighbors(2) == (0, 1, 3)

    def test_copy_is_independent(self, eager):
        clone = eager.copy()
        eager.remove_vertices([0, 1])
        assert len(clone) == 5
        assert clone.num_edges() == 4
        assert clone.has_edge(0, 1)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100_000))
    def test_equivalent_to_lazy_class_under_random_removals(self, seed):
        """Same construction + removal sequence → identical query results,
        interleaving queries between removals."""
        rng = random.Random(seed)
        num = rng.randint(2, 14)
        edges = [
            (i, j)
            for i in range(num)
            for j in range(i + 1, num)
            if rng.random() < 0.4
        ]
        lazy = CandidateGraph(range(num), edges)
        eager = EagerCandidateGraph(range(num), edges)
        while not lazy.is_empty():
            assert eager.vertices == lazy.vertices
            assert eager.num_edges() == lazy.num_edges()
            assert list(eager.edges()) == list(lazy.edges())
            for vertex in lazy.vertices:
                assert eager.neighbors(vertex) == lazy.neighbors(vertex)
                assert eager.degree(vertex) == lazy.degree(vertex)
            alive = sorted(lazy.vertices)
            doomed = rng.sample(alive, rng.randint(1, len(alive)))
            lazy.remove_vertices(doomed)
            eager.remove_vertices(doomed)
        assert eager.is_empty()
        assert eager.num_edges() == 0
