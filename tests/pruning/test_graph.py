"""Tests for repro.pruning.graph."""

import pytest

from repro.pruning.graph import CandidateGraph, graph_from_candidates


@pytest.fixture
def triangle_plus_tail():
    # 0-1-2 triangle, 2-3 tail, 4 isolated.
    return CandidateGraph(range(5), [(0, 1), (1, 2), (0, 2), (2, 3)])


class TestConstruction:
    def test_unknown_vertex_edge_rejected(self):
        with pytest.raises(ValueError):
            CandidateGraph([0, 1], [(0, 2)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            CandidateGraph([0, 1], [(0, 0)])

    def test_factory(self):
        graph = graph_from_candidates([0, 1], [(0, 1)])
        assert graph.has_edge(0, 1)


class TestQueries:
    def test_neighbors_sorted(self, triangle_plus_tail):
        assert triangle_plus_tail.neighbors(2) == [0, 1, 3]

    def test_degree(self, triangle_plus_tail):
        assert triangle_plus_tail.degree(2) == 3
        assert triangle_plus_tail.degree(4) == 0

    def test_neighbors_of_removed_vertex_raises(self, triangle_plus_tail):
        triangle_plus_tail.remove_vertices([2])
        with pytest.raises(KeyError):
            triangle_plus_tail.neighbors(2)

    def test_edges_enumeration(self, triangle_plus_tail):
        assert list(triangle_plus_tail.edges()) == [
            (0, 1), (0, 2), (1, 2), (2, 3)
        ]

    def test_num_edges(self, triangle_plus_tail):
        assert triangle_plus_tail.num_edges() == 4

    def test_contains(self, triangle_plus_tail):
        assert 4 in triangle_plus_tail
        triangle_plus_tail.remove_vertices([4])
        assert 4 not in triangle_plus_tail


class TestRemoval:
    def test_removal_filters_neighbors(self, triangle_plus_tail):
        triangle_plus_tail.remove_vertices([0])
        assert triangle_plus_tail.neighbors(2) == [1, 3]

    def test_removal_filters_edges(self, triangle_plus_tail):
        triangle_plus_tail.remove_vertices([2])
        assert list(triangle_plus_tail.edges()) == [(0, 1)]

    def test_len_tracks_live_vertices(self, triangle_plus_tail):
        assert len(triangle_plus_tail) == 5
        triangle_plus_tail.remove_vertices([0, 4])
        assert len(triangle_plus_tail) == 3

    def test_is_empty(self, triangle_plus_tail):
        triangle_plus_tail.remove_vertices(range(5))
        assert triangle_plus_tail.is_empty()

    def test_removing_twice_is_idempotent(self, triangle_plus_tail):
        triangle_plus_tail.remove_vertices([0])
        triangle_plus_tail.remove_vertices([0])
        assert len(triangle_plus_tail) == 4

    def test_has_edge_requires_both_alive(self, triangle_plus_tail):
        assert triangle_plus_tail.has_edge(0, 1)
        triangle_plus_tail.remove_vertices([1])
        assert not triangle_plus_tail.has_edge(0, 1)


class TestCopy:
    def test_copy_is_independent(self, triangle_plus_tail):
        clone = triangle_plus_tail.copy()
        triangle_plus_tail.remove_vertices([0, 1])
        assert len(clone) == 5
        assert clone.has_edge(0, 1)
