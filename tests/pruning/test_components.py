"""Connected-component partitioning and largest-first shard packing."""

import random as random_module

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pruning.components import (
    _components_python,
    connected_components,
    pack_components,
)


class TestConnectedComponents:
    def test_splits_along_edges(self):
        components = connected_components(
            [0, 1, 2, 3, 4, 5], [(0, 1), (1, 2), (4, 5)]
        )
        assert components == [(0, 1, 2), (3,), (4, 5)]

    def test_isolated_vertices_are_singletons(self):
        assert connected_components([7, 3, 9], []) == [(3,), (7,), (9,)]

    def test_chain_and_cycle_merge(self):
        components = connected_components(
            [0, 1, 2, 3], [(0, 1), (1, 2), (2, 0), (2, 3)]
        )
        assert components == [(0, 1, 2, 3)]

    def test_unknown_vertex_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            connected_components([0, 1], [(0, 7)])

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 100_000))
    def test_partition_covers_exactly_once(self, seed):
        rng = random_module.Random(seed)
        n = rng.randint(1, 40)
        vertices = list(range(n))
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)
                 if rng.random() < 0.08]
        components = connected_components(vertices, pairs)
        flat = [v for members in components for v in members]
        assert sorted(flat) == vertices
        assert len(flat) == len(set(flat))
        # Every edge stays inside one component.
        of = {v: index for index, members in enumerate(components)
              for v in members}
        assert all(of[a] == of[b] for a, b in pairs)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 100_000))
    def test_backends_agree(self, seed):
        # The scipy label pass (when importable) and the pure-Python
        # union-find must emit the identical canonical component list.
        rng = random_module.Random(seed)
        n = rng.randint(0, 40)
        vertices = rng.sample(range(1000), n)
        pairs = [(a, b) for i, a in enumerate(vertices)
                 for b in vertices[i + 1:] if rng.random() < 0.08]
        assert connected_components(vertices, pairs) == \
            _components_python(vertices, pairs)


class TestPackComponents:
    def test_largest_first_balances_loads(self):
        components = [(0, 1, 2, 3), (4, 5, 6), (7, 8), (9,)]
        # LPT: sizes 4,3,2,1 -> bins [4, then 1] and [3, then 2].
        assert pack_components(components, 2) == [[0, 3], [1, 2]]

    def test_more_shards_than_components_leaves_empty_bins(self):
        assert pack_components([(0, 1)], 3) == [[0], [], []]

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="num_shards"):
            pack_components([(0,)], 0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 100_000), st.integers(1, 6))
    def test_every_component_packed_exactly_once(self, seed, num_shards):
        rng = random_module.Random(seed)
        components = [tuple(range(base, base + rng.randint(1, 9)))
                      for base in range(0, 100, 10)]
        packed = pack_components(components, num_shards)
        assert len(packed) == num_shards
        flat = sorted(index for shard in packed for index in shard)
        assert flat == list(range(len(components)))
        # No bin exceeds the optimum by more than the largest component.
        loads = [sum(len(components[index]) for index in shard)
                 for shard in packed]
        largest = max(len(c) for c in components)
        assert max(loads) - min(load for load in loads) <= largest
