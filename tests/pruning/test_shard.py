"""Byte-identity of the sharded vectorized join with the scalar prefix join.

Sharding and vectorization are throughput optimizations, not
approximations: for every metric, shard count, process count, and kernel
backend the sharded join must return exactly the pairs and float scores of
:func:`~repro.pruning.prefix_join.prefix_filtered_candidates` (itself
pinned to the seed reference loop by ``test_fastpath_equivalence``).
These tests also cover the ``build_candidate_set`` routing (``shards`` /
``kernel_backend`` knobs) and the never-silent serial fallback.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.registry import generate
from repro.datasets.schema import Record
from repro.pruning import parallel as parallel_module
from repro.pruning.candidate import build_candidate_set
from repro.pruning.parallel import ParallelFallbackWarning
from repro.pruning.prefix_join import PREFIX_METRICS, prefix_filtered_candidates
from repro.similarity.composite import (
    SET_METRIC_FUNCTIONS,
    cosine_set_similarity_function,
    dice_similarity_function,
    jaccard_similarity_function,
    overlap_similarity_function,
    qgram_similarity_function,
)
from repro.similarity.jaccard import token_jaccard
from repro.similarity.kernels import numpy_available

shard = pytest.importorskip("repro.pruning.shard")
pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="the sharded join requires numpy"
)

SET_FACTORIES = {
    "jaccard": jaccard_similarity_function,
    "cosine": cosine_set_similarity_function,
    "dice": dice_similarity_function,
    "overlap": overlap_similarity_function,
}


def recs(*texts):
    return [Record(record_id=i, text=t) for i, t in enumerate(texts)]


def join_args(metric, factory=None):
    similarity = (factory or SET_FACTORIES[metric])()
    return dict(
        set_of=similarity.set_of,
        set_function=SET_METRIC_FUNCTIONS[metric],
        metric=metric,
    )


def assert_same_join(records, metric, threshold, *, include_empty_pairs=False,
                     shard_counts=(1, 2, 3, 5, 8), backends=("vectorized",
                                                             "scalar")):
    """The scalar unsharded join vs every (shards, backend) combination."""
    expected_pairs, expected_scores = prefix_filtered_candidates(
        records, threshold=threshold,
        include_empty_pairs=include_empty_pairs, **join_args(metric),
    )
    for num_shards in shard_counts:
        for backend in backends:
            pairs, scores = shard.sharded_prefix_filtered_candidates(
                records, threshold=threshold, num_shards=num_shards,
                kernel_backend=backend,
                include_empty_pairs=include_empty_pairs, **join_args(metric),
            )
            assert pairs == expected_pairs, (metric, num_shards, backend)
            assert scores == expected_scores, (metric, num_shards, backend)


class TestShardedJoinOnDatasets:
    @pytest.mark.parametrize("metric", PREFIX_METRICS)
    def test_paper_dataset_all_shard_counts(self, metric):
        records = generate("paper", scale=0.15, seed=3).records
        assert_same_join(records, metric, threshold=0.3,
                         shard_counts=(1, 3, 8))

    @pytest.mark.parametrize("dataset_name", ("restaurant", "product"))
    def test_other_datasets(self, dataset_name):
        records = generate(dataset_name, scale=0.1, seed=5).records
        assert_same_join(records, "jaccard", threshold=0.3,
                         shard_counts=(1, 5))

    def test_include_empty_pairs(self):
        records = recs("", "", "a b", "a b c", "")
        assert_same_join(records, "jaccard", threshold=0.3,
                         include_empty_pairs=True, shard_counts=(1, 2, 4))


short_texts = st.lists(
    st.text(alphabet="abcdefg ", min_size=0, max_size=24),
    min_size=2, max_size=14,
)


class TestShardedJoinRandomized:
    @settings(max_examples=40, deadline=None)
    @given(texts=short_texts,
           threshold=st.sampled_from([0.0, 0.1, 0.3, 1 / 3, 0.9]),
           metric=st.sampled_from(PREFIX_METRICS),
           num_shards=st.sampled_from([1, 2, 3, 7]),
           include_empty=st.booleans())
    def test_matches_scalar_join(self, texts, threshold, metric, num_shards,
                                 include_empty):
        assert_same_join(recs(*texts), metric, threshold,
                         include_empty_pairs=include_empty,
                         shard_counts=(num_shards,))

    @settings(max_examples=20, deadline=None)
    @given(texts=short_texts, block=st.sampled_from([1, 7, 64]))
    def test_pair_block_size_invariant(self, texts, block):
        # Tiny pair blocks exercise the batch boundaries; output must not
        # depend on the block size.
        records = recs(*texts)
        expected = shard.sharded_prefix_filtered_candidates(
            records, threshold=0.3, num_shards=2, **join_args("jaccard"),
        )
        got = shard.sharded_prefix_filtered_candidates(
            records, threshold=0.3, num_shards=2, pair_block_size=block,
            **join_args("jaccard"),
        )
        assert got == expected


class TestForkParallelism:
    def test_fork_processes_match_in_process(self):
        records = generate("paper", scale=0.15, seed=3).records
        serial = shard.sharded_prefix_filtered_candidates(
            records, threshold=0.3, num_shards=4, **join_args("jaccard"),
        )
        forked = shard.sharded_prefix_filtered_candidates(
            records, threshold=0.3, num_shards=4, processes=2,
            **join_args("jaccard"),
        )
        assert forked == serial

    def test_fallback_warns_and_emits_event(self, monkeypatch):
        monkeypatch.setattr(parallel_module, "fork_available", lambda: False)
        monkeypatch.setattr(shard, "fork_available", lambda: False)
        events = []

        class FakeObs:
            def event(self, name, **fields):
                events.append((name, fields))

        records = recs("a b c", "a b d", "b c d")
        with pytest.warns(ParallelFallbackWarning):
            pairs, scores = shard.sharded_prefix_filtered_candidates(
                records, threshold=0.1, num_shards=2, processes=2,
                obs=FakeObs(), **join_args("jaccard"),
            )
        expected_pairs, expected_scores = prefix_filtered_candidates(
            records, threshold=0.1, **join_args("jaccard"),
        )
        assert pairs == expected_pairs and scores == expected_scores
        assert any(name == "pruning.parallel_fallback" for name, _ in events)


class TestBuildCandidateSetRouting:
    def test_shards_and_backends_match_reference(self):
        records = generate("restaurant", scale=0.1, seed=7).records
        reference = build_candidate_set(
            records, jaccard_similarity_function(),
            threshold=0.3, engine="reference",
        )
        for kwargs in (
            dict(engine="prefix", shards=3),
            dict(engine="prefix", kernel_backend="vectorized"),
            dict(engine="prefix", kernel_backend="scalar", shards=2),
            dict(shards=4),  # auto engine
        ):
            result = build_candidate_set(
                records, jaccard_similarity_function(),
                threshold=0.3, **kwargs,
            )
            assert result.pairs == reference.pairs, kwargs
            assert result.machine_scores == reference.machine_scores, kwargs

    def test_qgram_sharded_matches_reference(self):
        records = generate("restaurant", scale=0.08, seed=2).records
        reference = build_candidate_set(
            records, qgram_similarity_function(), threshold=0.2,
            use_token_blocking=False, engine="reference",
        )
        sharded = build_candidate_set(
            records, qgram_similarity_function(), threshold=0.2,
            use_token_blocking=False, engine="prefix", shards=3,
        )
        assert sharded.pairs == reference.pairs
        assert sharded.machine_scores == reference.machine_scores

    def test_negative_shards_rejected(self):
        with pytest.raises(ValueError):
            build_candidate_set(recs("a", "b"), jaccard_similarity_function(),
                                shards=-1)

    def test_reference_engine_rejects_shards(self):
        with pytest.raises(ValueError):
            build_candidate_set(recs("a", "b"), jaccard_similarity_function(),
                                engine="reference", shards=2)

    def test_reference_engine_rejects_vectorized_backend(self):
        with pytest.raises(ValueError):
            build_candidate_set(recs("a", "b"), jaccard_similarity_function(),
                                engine="reference",
                                kernel_backend="vectorized")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            build_candidate_set(recs("a", "b"), jaccard_similarity_function(),
                                kernel_backend="simd")


class TestShardedJoinValidation:
    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            shard.sharded_prefix_filtered_candidates(
                recs("a", "b"), set_of=lambda r: frozenset(),
                set_function=lambda a, b: 0.0, metric="levenshtein",
                threshold=0.3,
            )

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError):
            shard.sharded_prefix_filtered_candidates(
                recs("a", "b"), threshold=0.3, num_shards=0,
                **join_args("jaccard"),
            )

    def test_threshold_equal_score_excluded(self):
        # Strict f > τ, as in the paper: jaccard({a,b},{b,c}) == 1/3.
        pairs, _ = shard.sharded_prefix_filtered_candidates(
            recs("a b", "b c"), threshold=1 / 3, num_shards=2,
            **join_args("jaccard"),
        )
        assert (0, 1) not in pairs


def test_reference_text_metric_never_routes_to_shards():
    # A plain text metric has no set metadata; the auto engine must fall
    # back to the reference loop even when shards are requested... which is
    # exactly the reference+shards conflict, so it must raise instead of
    # silently ignoring the knob.
    from repro.similarity.composite import SimilarityFunction

    similarity = SimilarityFunction("jaccard", token_jaccard)
    with pytest.raises(ValueError):
        build_candidate_set(recs("a b", "a c"), similarity, shards=2)
