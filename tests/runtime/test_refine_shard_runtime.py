"""Sharded parallel refinement: byte-identity under processes, fault
schedules, fork fallback, and checkpoint kill-resume.

The cross-shard coordinator replays worker round logs through the
caller's oracle in min-rank merged-round order, so the clustering,
crowd stats, diagnostics, and event streams must be byte-identical for
every ``{shards, processes, fault plan}`` configuration.  (Parity with
the *classic* engine is empirical and covered for the paper's datasets
in ``tests/core/test_refine_shard.py`` — the confused largescale
population used here diverges from classic by design, which is exactly
why it exercises the coordination paths.)
"""

import multiprocessing
import tempfile
from pathlib import Path

import pytest

from repro.core.acd import run_acd
from repro.core.pc_pivot import pc_pivot
from repro.core.pc_refine import PCRefineDiagnostics, pc_refine
from repro.crowd.cache import AnswerFile
from repro.crowd.oracle import CrowdOracle
from repro.crowd.worker import WorkerPool
from repro.datasets.registry import generate
from repro.experiments.configs import PRUNING_THRESHOLD, difficulty_model
from repro.obs import ObsContext
from repro.pruning.candidate import build_candidate_set
from repro.pruning.parallel import ParallelFallbackWarning
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.faults import ProcessFaultPlan
from repro.runtime.supervisor import SupervisorPolicy
from repro.similarity.composite import jaccard_similarity_function

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the sharded refinement pool requires the 'fork' start method",
)

SHARDS = 6
SEED = 3
POLICY = SupervisorPolicy(backoff_base_s=0.005)

_DATASET = generate("largescale", scale=0.2, seed=0, confusion=0.25)
_CANDIDATES = build_candidate_set(
    _DATASET.records, jaccard_similarity_function(),
    threshold=PRUNING_THRESHOLD,
)
_WORKERS = WorkerPool(difficulty=difficulty_model("largescale"),
                      num_workers=3)


def _refine_outcome(shards=SHARDS, processes=0, fault_plan=None,
                    policy=POLICY):
    # AnswerFile resolves each pair from a pair-seeded RNG, so a fresh
    # instance per run replays identical answers; the confused
    # population guarantees multi-round components (real packed work).
    oracle = CrowdOracle(AnswerFile(_DATASET.gold, _WORKERS))
    clustering = pc_pivot(_DATASET.record_ids, _CANDIDATES, oracle,
                          seed=SEED)
    diagnostics = PCRefineDiagnostics()
    obs = ObsContext()
    with obs.span("refinement"):
        clustering = pc_refine(
            clustering, _CANDIDATES, oracle,
            num_records=len(_DATASET.records), diagnostics=diagnostics,
            shards=shards, processes=processes,
            supervisor_policy=policy, fault_plan=fault_plan, obs=obs,
        )
    events = []

    def walk(span):
        for event in span.events:
            events.append((event["name"], event["attrs"]))
        for child in span.children:
            walk(child)

    for root in obs.tracer.roots:
        walk(root)
    return {
        "clustering": clustering.to_state(),
        "stats": oracle.stats.snapshot(),
        "batches": list(oracle.stats.batch_sizes),
        "rounds": diagnostics.rounds,
        "batch_sizes": diagnostics.batch_sizes,
        "packed": diagnostics.operations_packed,
        "applied": diagnostics.operations_applied,
        "free": diagnostics.free_operations_applied,
        "evaluations": diagnostics.operation_evaluations,
        "cache": diagnostics.evaluation_cache,
        "events": [e for e in events if not e[0].startswith("runtime")],
        "counters": obs.metrics.as_dict()["counters"],
    }


def _identity_view(outcome):
    """Everything that must be byte-identical across configurations
    (runtime fault counters naturally differ between schedules)."""
    return {key: value for key, value in outcome.items()
            if key != "counters"}


class TestProcessByteIdentity:
    def test_parallel_identical_to_in_process(self):
        serial = _refine_outcome()
        assert serial["rounds"] >= 1
        for processes in (2, 4):
            parallel = _refine_outcome(processes=processes)
            assert _identity_view(parallel) == _identity_view(serial)


class TestFaultByteIdentity:
    def test_every_fault_kind_is_byte_identical(self):
        reference = _identity_view(_refine_outcome(processes=4))
        plans = {
            "kill": ProcessFaultPlan.sample(SHARDS, seed=1, kills=2),
            "delay": ProcessFaultPlan.sample(SHARDS, seed=1, delays=2,
                                             delay_seconds=0.5),
            "poison": ProcessFaultPlan.sample(SHARDS, seed=1, poisons=2),
        }
        policies = {
            "kill": POLICY,
            "delay": SupervisorPolicy(backoff_base_s=0.005,
                                      task_deadline_s=0.2),
            "poison": POLICY,
        }
        for kind, plan in plans.items():
            chaotic = _refine_outcome(processes=4, fault_plan=plan,
                                      policy=policies[kind])
            assert _identity_view(chaotic) == reference, kind

    def test_kill_plan_actually_crashed_workers(self):
        outcome = _refine_outcome(
            processes=4,
            fault_plan=ProcessFaultPlan.sample(SHARDS, seed=1, kills=2),
        )
        assert outcome["counters"].get("runtime_worker_crashes_total", 0) >= 1


class TestForkFallback:
    def test_fallback_warns_when_fork_unavailable(self, monkeypatch):
        import repro.core.refine_shard as refine_shard

        monkeypatch.setattr(refine_shard, "fork_available", lambda: False)
        serial = _refine_outcome()
        with pytest.warns(ParallelFallbackWarning):
            fallen_back = _refine_outcome(processes=4)
        view = _identity_view(fallen_back)
        view["events"] = [e for e in view["events"]
                          if e[0] != "pruning.parallel_fallback"]
        assert view == _identity_view(serial)


class TestJournalComposition:
    def test_journaled_sharded_run_replays_byte_identical(self):
        """A journaled sharded run re-invoked on the same journal serves
        every coordinator batch from the write-ahead log (the journal
        does not grow) and reports byte-identical.  Forked workers
        recompute their component answers from the pair-deterministic
        source by design — the journal's guarantee covers the
        authoritative coordinator accounting, not worker-side memos.
        """
        from repro.crowd.persistence import AnswerJournal

        def acd(journal_path):
            return run_acd(
                _DATASET.record_ids, _CANDIDATES,
                AnswerFile(_DATASET.gold, _WORKERS), seed=7,
                refine_shards=SHARDS, refine_processes=2,
                journal_path=journal_path,
            )

        with tempfile.TemporaryDirectory() as tmp:
            journal = Path(tmp) / "run.journal"
            first = acd(journal)
            batches_after_first = AnswerJournal(journal).num_batches
            replayed = acd(journal)
            batches_after_replay = AnswerJournal(journal).num_batches
        assert batches_after_first >= 1
        assert batches_after_replay == batches_after_first
        assert (replayed.clustering.to_state()
                == first.clustering.to_state())
        assert replayed.stats.snapshot() == first.stats.snapshot()
        assert replayed.stats.batch_sizes == first.stats.batch_sizes


class TestCheckpointKillResume:
    def test_refinement_checkpoint_resumes_sharded_run(self):
        """A run killed right after the sharded refinement checkpoint
        resumes in a fresh process and reports byte-identical to an
        uninterrupted sharded run — without touching the crowd at all."""
        config = {"dataset": "largescale", "scale": 0.2, "seed": 0,
                  "refine_shards": SHARDS}

        def acd(answers, checkpoints=None, resume=False):
            return run_acd(
                _DATASET.record_ids, _CANDIDATES, answers, seed=7,
                refine_shards=SHARDS, refine_processes=2,
                checkpoints=checkpoints, resume=resume,
            )

        uninterrupted = acd(AnswerFile(_DATASET.gold, _WORKERS))
        with tempfile.TemporaryDirectory() as tmp:
            store = CheckpointStore(Path(tmp), config=config)
            first = acd(AnswerFile(_DATASET.gold, _WORKERS),
                        checkpoints=store)
            assert store.load("refinement") is not None

            class Refusing:
                pair_deterministic = True
                num_workers = 3

                def confidence(self, a, b):
                    raise AssertionError(
                        f"restored refinement re-crowdsourced ({a}, {b})"
                    )

            resumed_store = CheckpointStore(Path(tmp), config=config)
            resumed = acd(Refusing(), checkpoints=resumed_store,
                          resume=True)

        for result in (first, resumed):
            assert (result.clustering.to_state()
                    == uninterrupted.clustering.to_state())
            assert result.stats.snapshot() == uninterrupted.stats.snapshot()
            assert (result.stats.batch_sizes
                    == uninterrupted.stats.batch_sizes)
        assert str(resumed.refinement_stats) == str(
            uninterrupted.refinement_stats)
