"""Kill-resume byte-identity: restart from a phase checkpoint, finish
exactly like the uninterrupted run.

Each test emulates a run killed right after a phase's snapshot landed and
resumes in a fresh "process" — fresh instance, fresh answer source, fresh
:class:`CheckpointStore` — asserting the final clustering, crowd-cost
counters, and per-phase stats are byte-identical to a run that was never
interrupted, and that the checkpointed phase was not re-executed.
"""

import pytest

from repro.core.acd import run_acd
from repro.crowd.persistence import JournalingAnswerFile
from repro.experiments.runner import prepare_instance
from repro.runtime.checkpoint import (
    CheckpointStore,
    candidate_state,
    restore_candidates,
)

DATASET, SCALE, SEED, METHOD_SEED = "restaurant", 0.1, 3, 7
CONFIG = {"dataset": DATASET, "scale": SCALE, "seed": SEED,
          "method_seed": METHOD_SEED}


def _fresh_instance():
    return prepare_instance(DATASET, "3w", scale=SCALE, seed=SEED)


def _fingerprint(result) -> tuple:
    return (
        tuple(tuple(sorted(cluster))
              for cluster in result.clustering.as_sets()),
        tuple(sorted(result.stats.snapshot().items())),
        tuple(result.stats.batch_sizes),
        tuple(sorted(result.generation_stats.items())),
        tuple(sorted(result.refinement_stats.items())),
    )


class _CountingAnswers:
    """Pass-through answer source counting fresh pair resolutions."""

    def __init__(self, source):
        self._source = source
        self.resolved_pairs = 0

    @property
    def num_workers(self) -> int:
        return self._source.num_workers

    def confidence(self, record_a: int, record_b: int) -> float:
        self.resolved_pairs += 1
        return self._source.confidence(record_a, record_b)


@pytest.fixture(scope="module")
def baseline(tiny_restaurant):
    counting = _CountingAnswers(tiny_restaurant.answers)
    result = run_acd(tiny_restaurant.record_ids, tiny_restaurant.candidates,
                     counting, seed=METHOD_SEED)
    return result, counting.resolved_pairs


class TestPruningResume:
    def test_restored_candidates_skip_the_join(self, tmp_path,
                                               tiny_restaurant, baseline):
        reference, _ = baseline
        store = CheckpointStore(tmp_path, config=CONFIG)
        store.save("pruning", candidate_state(tiny_restaurant.candidates))

        # The resumed "process": reload the snapshot, hand the candidates
        # to prepare_instance so the join never runs.
        resumed_store = CheckpointStore(tmp_path, config=CONFIG)
        candidates = restore_candidates(resumed_store.load("pruning"))
        assert candidates.pairs == tiny_restaurant.candidates.pairs
        assert (candidates.machine_scores
                == tiny_restaurant.candidates.machine_scores)

        instance = prepare_instance(DATASET, "3w", scale=SCALE, seed=SEED,
                                    candidates=candidates)
        result = run_acd(instance.record_ids, instance.candidates,
                         instance.answers, seed=METHOD_SEED)
        assert _fingerprint(result) == _fingerprint(reference)


class TestGenerationResume:
    def test_resume_skips_generation_byte_identically(self, tmp_path,
                                                      baseline):
        reference, baseline_resolved = baseline
        store = CheckpointStore(tmp_path, config=CONFIG)
        first = _fresh_instance()
        run_acd(first.record_ids, first.candidates, first.answers,
                seed=METHOD_SEED, checkpoints=store)
        assert store.path("generation").exists()

        resumed_store = CheckpointStore(tmp_path, config=CONFIG)
        resumed = _fresh_instance()
        counting = _CountingAnswers(resumed.answers)
        result = run_acd(resumed.record_ids, resumed.candidates, counting,
                         seed=METHOD_SEED, checkpoints=resumed_store,
                         resume=True)
        assert _fingerprint(result) == _fingerprint(reference)
        # The resumed run may only resolve refinement-phase pairs: the
        # generation phase's crowdsourcing must come from the snapshot.
        generation_pairs = int(reference.generation_stats["pairs_issued"])
        refinement_pairs = baseline_resolved - generation_pairs
        assert counting.resolved_pairs <= refinement_pairs

    def test_without_resume_flag_the_phase_reruns(self, tmp_path, baseline):
        reference, _ = baseline
        store = CheckpointStore(tmp_path, config=CONFIG)
        first = _fresh_instance()
        run_acd(first.record_ids, first.candidates, first.answers,
                seed=METHOD_SEED, checkpoints=store)

        fresh = _fresh_instance()
        counting = _CountingAnswers(fresh.answers)
        result = run_acd(fresh.record_ids, fresh.candidates, counting,
                         seed=METHOD_SEED,
                         checkpoints=CheckpointStore(tmp_path,
                                                     config=CONFIG))
        # resume=False ignores the snapshot: full crowd cost, same result.
        assert _fingerprint(result) == _fingerprint(reference)
        assert counting.resolved_pairs == int(
            reference.stats.pairs_issued)


class TestJournalPlusCheckpoint:
    def test_combined_resume_is_byte_identical(self, tmp_path, baseline):
        reference, _ = baseline
        journal_path = tmp_path / "run.wal"
        store = CheckpointStore(tmp_path / "ck", config=CONFIG)

        first = _fresh_instance()
        with JournalingAnswerFile(first.answers, journal_path) as answers:
            run_acd(first.record_ids, first.candidates, answers,
                    seed=METHOD_SEED, checkpoints=store)

        # The resumed run replays the journal for the refinement batches
        # and restores the generation phase from its checkpoint — the
        # skip_replayed_batches handshake keeps the counters from being
        # merged twice.
        resumed = _fresh_instance()
        resumed_store = CheckpointStore(tmp_path / "ck", config=CONFIG)
        counting = _CountingAnswers(resumed.answers)
        with JournalingAnswerFile(counting, journal_path) as answers:
            result = run_acd(resumed.record_ids, resumed.candidates,
                             answers, seed=METHOD_SEED,
                             checkpoints=resumed_store, resume=True)
        assert _fingerprint(result) == _fingerprint(reference)
        # Every pair was journaled by the first run: the resumed run
        # crowdsources nothing at all.
        assert counting.resolved_pairs == 0
