"""The PR's acceptance checks, as tests.

1. A sharded pruning run at the 10k-record tier with injected worker
   kills completes byte-identical to the fault-free run.
2. The chaos suite's process-fault matrix and checkpoint kill-resume
   checks report byte-identity and no re-executed phases.
"""

import multiprocessing

import pytest

from repro.experiments.chaos import (
    run_checkpoint_kill_resume,
    run_generation_process_faults,
    run_runtime_process_faults,
)
from repro.similarity.kernels import numpy_available

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods()
    or not numpy_available(),
    reason="the sharded supervised join requires fork and numpy",
)


class TestShardedKillAtScale:
    def test_10k_tier_kill_is_byte_identical(self):
        from repro.datasets.registry import generate
        from repro.experiments.configs import PRUNING_THRESHOLD
        from repro.obs import ObsContext
        from repro.pruning.candidate import build_candidate_set
        from repro.runtime.faults import ProcessFaultPlan
        from repro.runtime.supervisor import SupervisorPolicy
        from repro.similarity.composite import jaccard_similarity_function

        dataset = generate("largescale", scale=1.0, seed=0)  # 10k records
        assert len(dataset.records) == 10_000

        def prune(fault_plan=None, obs=None):
            return build_candidate_set(
                dataset.records, jaccard_similarity_function(),
                threshold=PRUNING_THRESHOLD, engine="prefix",
                shards=8, parallel=4,
                supervisor_policy=SupervisorPolicy(backoff_base_s=0.005),
                fault_plan=fault_plan, obs=obs,
            )

        reference = prune()
        obs = ObsContext()
        chaotic = prune(
            fault_plan=ProcessFaultPlan.sample(8, seed=0, kills=2),
            obs=obs,
        )
        assert chaotic.pairs == reference.pairs
        assert chaotic.machine_scores == reference.machine_scores
        assert chaotic.threshold == reference.threshold
        counters = obs.metrics.as_dict()["counters"]
        assert counters.get("runtime_worker_crashes_total", 0) >= 2


class TestChaosSuiteChecks:
    def test_process_fault_matrix(self):
        checks = run_runtime_process_faults(records=10_000,
                                            faults_per_kind=1)
        by_kind = {check["fault"]: check for check in checks}
        assert set(by_kind) == {"kill", "delay", "poison"}
        assert all(check["byte_identical"] for check in checks)
        assert by_kind["kill"]["runtime_counters"].get(
            "runtime_worker_crashes_total", 0) >= 1
        assert by_kind["delay"]["runtime_counters"].get(
            "runtime_straggler_redispatches_total", 0) >= 1
        assert by_kind["poison"]["runtime_counters"].get(
            "runtime_task_retries_total", 0) >= 1

    def test_generation_fault_matrix(self):
        checks = run_generation_process_faults(records=2_000,
                                               faults_per_kind=1)
        by_kind = {check["fault"]: check for check in checks}
        assert set(by_kind) == {"kill", "delay", "poison"}
        assert all(check["byte_identical"] for check in checks)
        assert all(check["classic_identical"] for check in checks)
        assert by_kind["kill"]["runtime_counters"].get(
            "runtime_worker_crashes_total", 0) >= 1
        assert by_kind["poison"]["runtime_counters"].get(
            "runtime_task_retries_total", 0) >= 1

    def test_checkpoint_kill_resume(self):
        checks = run_checkpoint_kill_resume()
        by_phase = {check["phase"]: check for check in checks}
        assert set(by_phase) == {"pruning", "generation", "refinement"}
        assert all(check["byte_identical"] for check in checks)
        assert not any(check["phase_reexecuted"] for check in checks)
        assert by_phase["pruning"]["candidates_identical"]
