"""The checkpointable state snapshots: clustering, crowd stats, oracle.

The generation checkpoint's byte-identity rests on three round trips:
cluster ids (merge tie-breaking depends on them), the full crowd-cost
counters, and the answer set ``A`` in answer-log order.  These tests pin
each one, plus the journal's replay-skip used when a checkpoint already
carries a phase's cost counters.
"""

import pytest

from repro.core.clustering import Clustering
from repro.crowd.persistence import JournalingAnswerFile
from repro.crowd.stats import CrowdStats
from tests.conftest import scripted_oracle


class TestClusteringState:
    def _worked_clustering(self) -> Clustering:
        clustering = Clustering([[0, 1], [2], [3, 4, 5], [6]])
        clustering.merge(clustering.cluster_of(0), clustering.cluster_of(2))
        clustering.split(4)
        return clustering

    def test_round_trip_preserves_partition_and_ids(self):
        original = self._worked_clustering()
        restored = Clustering.from_state(original.to_state())
        assert restored.as_sets() == original.as_sets()
        assert restored.cluster_ids == original.cluster_ids
        for record_id in original.record_ids():
            assert (restored.cluster_of(record_id)
                    == original.cluster_of(record_id))
        restored.check_invariants()

    def test_future_id_assignment_is_identical(self):
        original = self._worked_clustering()
        restored = Clustering.from_state(original.to_state())
        assert restored.add_cluster([99]) == original.add_cluster([99])
        assert (restored.merge(restored.cluster_of(3),
                               restored.cluster_of(6))
                == original.merge(original.cluster_of(3),
                                  original.cluster_of(6)))

    def test_state_is_json_friendly(self):
        import json

        state = self._worked_clustering().to_state()
        assert json.loads(json.dumps(state)) == state

    @pytest.mark.parametrize("state", (
        {},
        {"clusters": [[0, [1]]]},
        {"next_id": 1},
        {"clusters": [[0, []]], "next_id": 1},
        {"clusters": [[0, [1]], [0, [2]]], "next_id": 1},
        {"clusters": [[5, [1]]], "next_id": 3},
        {"clusters": [[0, [1]], [1, [1]]], "next_id": 2},
        {"clusters": "nope", "next_id": 1},
    ))
    def test_malformed_state_raises(self, state):
        with pytest.raises(ValueError):
            Clustering.from_state(state)


class TestCrowdStatsState:
    def _worked_stats(self) -> CrowdStats:
        stats = CrowdStats(pairs_per_hit=10, reward_cents_per_hit=2.0,
                           num_workers=5)
        stats.pairs_issued = 271
        stats.iterations = 23
        stats.hits = 30
        stats.votes = 150
        stats.retries = 4
        stats.timeouts = 2
        stats.abandonments = 1
        stats.degraded_pairs = 3
        stats.quorum_stops = 7
        stats.batch_sizes.extend([40, 12, 9])
        return stats

    def test_round_trip_is_counter_exact(self):
        original = self._worked_stats()
        restored = CrowdStats.from_state(original.to_state())
        assert restored.to_state() == original.to_state()
        assert restored.snapshot() == original.snapshot()
        assert restored.batch_sizes == original.batch_sizes

    def test_restored_stats_keep_counting(self):
        restored = CrowdStats.from_state(self._worked_stats().to_state())
        restored.pairs_issued += 10
        restored.batch_sizes.append(10)
        assert restored.pairs_issued == 281
        assert restored.batch_sizes[-1] == 10

    @pytest.mark.parametrize("state", (
        {},
        {"pairs_per_hit": "many"},
        {"pairs_per_hit": 20, "num_workers": 3},
    ))
    def test_malformed_state_raises(self, state):
        with pytest.raises(ValueError):
            CrowdStats.from_state(state)


class TestOracleAnswerLog:
    ANSWERS = {(0, 1): 0.9, (2, 3): 0.2, (4, 5): 0.7, (0, 2): 0.4}

    def test_known_in_order_follows_ask_order(self):
        oracle = scripted_oracle(self.ANSWERS, num_workers=3)
        asked = [(4, 5), (0, 1), (0, 2)]
        for pair in asked:
            oracle.ask(*pair)
        assert [pair for pair, _ in oracle.known_in_order()] == asked

    def test_seed_known_replays_the_log_exactly(self):
        oracle = scripted_oracle(self.ANSWERS, num_workers=3)
        for pair in [(2, 3), (4, 5), (0, 1)]:
            oracle.ask(*pair)
        replayed = scripted_oracle(self.ANSWERS, num_workers=3)
        replayed.seed_known(dict(oracle.known_in_order()))
        assert replayed.known_in_order() == oracle.known_in_order()
        assert replayed.known_pairs() == oracle.known_pairs()


class _FaultySource:
    """An answer source that reports one retry per resolved batch."""

    num_workers = 3

    def __init__(self):
        self.fresh_resolutions = 0

    def confidence(self, record_a: int, record_b: int) -> float:
        self.fresh_resolutions += 1
        return 0.9

    def drain_fault_counters(self):
        return {"retries": 1}


class TestSkipReplayedBatches:
    def _journal_two_batches(self, path):
        with JournalingAnswerFile(_FaultySource(), path) as first_run:
            first_run.confidence_batch([(0, 1)])
            first_run.confidence_batch([(2, 3)])

    def test_negative_count_rejected(self, tmp_path):
        wrapper = JournalingAnswerFile(_FaultySource(),
                                       tmp_path / "journal.jsonl")
        with pytest.raises(ValueError):
            wrapper.skip_replayed_batches(-1)

    def test_skipped_batches_do_not_resurface_faults(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self._journal_two_batches(path)
        resumed = JournalingAnswerFile(_FaultySource(), path)
        # The checkpoint already carries both batches' cost counters.
        resumed.skip_replayed_batches(2)
        resumed.confidence_batch([(0, 1)])
        resumed.confidence_batch([(2, 3)])
        assert resumed.drain_fault_counters() == {}

    def test_unskipped_replay_still_resurfaces_faults(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self._journal_two_batches(path)
        resumed = JournalingAnswerFile(_FaultySource(), path)
        resumed.skip_replayed_batches(1)
        resumed.confidence_batch([(0, 1)])
        resumed.confidence_batch([(2, 3)])
        assert resumed.drain_fault_counters() == {"retries": 1}

    def test_skip_is_capped_at_inherited_batches(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self._journal_two_batches(path)
        resumed = JournalingAnswerFile(_FaultySource(), path)
        resumed.skip_replayed_batches(50)  # capped, no error
        resumed.confidence_batch([(0, 1)])
        assert resumed.drain_fault_counters() == {}
