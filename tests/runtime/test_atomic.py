"""The repo's one atomic writer: torn-write safety and cleanup.

Every persistence layer (answer journal, run manifest, phase checkpoints)
routes through :func:`repro.runtime.atomic.atomic_write_text`; these tests
pin the contract they all rely on — a reader sees the old file or the
complete new one, never a partial write, and a failed swap leaves neither
garbage nor damage behind.
"""

import os

import pytest

from repro.runtime.atomic import atomic_write_text, fsync_directory


class TestAtomicWriteText:
    def test_creates_file_with_exact_content(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, '{"a": 1}\n')
        assert target.read_text(encoding="utf-8") == '{"a": 1}\n'

    def test_replaces_existing_content_completely(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old content that is much longer than the new one")
        atomic_write_text(target, "new")
        assert target.read_text(encoding="utf-8") == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        target = tmp_path / "out.json"
        for revision in range(3):
            atomic_write_text(target, f"revision {revision}")
        assert [entry.name for entry in tmp_path.iterdir()] == ["out.json"]

    def test_failed_swap_keeps_original_and_cleans_temp(self, tmp_path,
                                                        monkeypatch):
        target = tmp_path / "out.json"
        atomic_write_text(target, "original")

        def refuse_replace(src, dst):
            raise OSError("simulated rename failure")

        monkeypatch.setattr(os, "replace", refuse_replace)
        with pytest.raises(OSError):
            atomic_write_text(target, "replacement")
        monkeypatch.undo()
        assert target.read_text(encoding="utf-8") == "original"
        assert [entry.name for entry in tmp_path.iterdir()] == ["out.json"]

    def test_unicode_round_trip(self, tmp_path):
        target = tmp_path / "unicode.txt"
        text = "café — naïve ✓ 中文\n"
        atomic_write_text(target, text)
        assert target.read_text(encoding="utf-8") == text

    def test_sync_directory_flag_still_writes(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, "batched", sync_directory=False)
        assert target.read_text(encoding="utf-8") == "batched"

    def test_accepts_string_paths(self, tmp_path):
        target = tmp_path / "str.json"
        atomic_write_text(str(target), "via str path")
        assert target.read_text(encoding="utf-8") == "via str path"


class TestFsyncDirectory:
    def test_missing_directory_is_a_silent_noop(self, tmp_path):
        fsync_directory(tmp_path / "does-not-exist")

    def test_existing_directory_succeeds(self, tmp_path):
        fsync_directory(tmp_path)
