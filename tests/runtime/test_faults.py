"""The process-fault plan: pure, seeded, deterministic chaos schedules."""

import pytest

from repro.runtime.faults import FAULT_KINDS, FaultDirective, ProcessFaultPlan


class TestDirective:
    def test_unscheduled_task_runs_clean(self):
        plan = ProcessFaultPlan(kill_tasks=frozenset({3}))
        assert plan.directive(0, 0) is None
        assert plan.directive(4, 0) is None

    def test_kill_wins_over_delay_wins_over_poison(self):
        everything = ProcessFaultPlan(
            kill_tasks=frozenset({0}), delay_tasks=frozenset({0}),
            poison_tasks=frozenset({0}),
        )
        assert everything.directive(0, 0).kind == "kill"
        delay_and_poison = ProcessFaultPlan(
            delay_tasks=frozenset({0}), poison_tasks=frozenset({0}),
        )
        assert delay_and_poison.directive(0, 0).kind == "delay"

    def test_delay_directive_carries_its_duration(self):
        plan = ProcessFaultPlan(delay_tasks=frozenset({1}),
                                delay_seconds=0.75)
        assert plan.directive(1, 0) == FaultDirective("delay",
                                                      delay_seconds=0.75)

    def test_faulty_attempts_window(self):
        # A transient fault (the default): only attempt 0 faults.
        transient = ProcessFaultPlan(kill_tasks=frozenset({0}))
        assert transient.directive(0, 0) is not None
        assert transient.directive(0, 1) is None
        # A persistent fault: the first three attempts all fault.
        persistent = ProcessFaultPlan(poison_tasks=frozenset({0}),
                                      faulty_attempts=3)
        assert all(persistent.directive(0, attempt) is not None
                   for attempt in range(3))
        assert persistent.directive(0, 3) is None

    def test_empty_property(self):
        assert ProcessFaultPlan().empty
        assert not ProcessFaultPlan(delay_tasks=frozenset({0})).empty


class TestValidation:
    def test_zero_faulty_attempts_rejected(self):
        with pytest.raises(ValueError):
            ProcessFaultPlan(faulty_attempts=0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ProcessFaultPlan(delay_seconds=-0.1)


class TestSample:
    def test_same_arguments_same_plan(self):
        first = ProcessFaultPlan.sample(32, seed=7, kills=3, delays=2,
                                        poisons=4)
        second = ProcessFaultPlan.sample(32, seed=7, kills=3, delays=2,
                                         poisons=4)
        assert first == second

    def test_different_seeds_differ(self):
        plans = {ProcessFaultPlan.sample(64, seed=seed, kills=4)
                 for seed in range(8)}
        assert len(plans) > 1

    def test_populations_are_disjoint_and_sized(self):
        plan = ProcessFaultPlan.sample(20, seed=1, kills=3, delays=4,
                                       poisons=5)
        assert len(plan.kill_tasks) == 3
        assert len(plan.delay_tasks) == 4
        assert len(plan.poison_tasks) == 5
        assert not plan.kill_tasks & plan.delay_tasks
        assert not plan.kill_tasks & plan.poison_tasks
        assert not plan.delay_tasks & plan.poison_tasks
        assert all(0 <= task < 20 for task in
                   plan.kill_tasks | plan.delay_tasks | plan.poison_tasks)

    def test_overscheduling_rejected(self):
        with pytest.raises(ValueError):
            ProcessFaultPlan.sample(4, kills=3, delays=2)

    def test_knobs_forwarded(self):
        plan = ProcessFaultPlan.sample(8, delays=2, delay_seconds=1.5,
                                       faulty_attempts=5)
        assert plan.delay_seconds == 1.5
        assert plan.faulty_attempts == 5


def test_fault_kinds_constant_matches_directives():
    assert FAULT_KINDS == ("kill", "delay", "poison")
