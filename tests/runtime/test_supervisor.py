"""The supervised fork pool: byte-identity under every fault schedule.

The contract under test is the determinism clause of
:func:`repro.runtime.supervised_map`: whatever the schedule of worker
crashes, stragglers, retries, and degradations, the results are exactly
``[worker_fn(p) for p in payloads]`` — and no worker process survives the
call, even when it aborts.
"""

import multiprocessing

import pytest

from repro.obs import ObsContext
from repro.runtime.faults import ProcessFaultPlan
from repro.runtime.supervisor import (
    RuntimeReport,
    SupervisorPolicy,
    supervised_map,
)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the supervised pool requires the 'fork' start method",
)


def _square(value):
    return value * value


PAYLOADS = list(range(12))
EXPECTED = [_square(value) for value in PAYLOADS]

#: Fast backoff so fault tests don't sleep through real retry delays.
FAST = SupervisorPolicy(backoff_base_s=0.001, backoff_cap_s=0.01)


def _runtime_counters(obs):
    counters = obs.metrics.as_dict()["counters"]
    return {name: value for name, value in counters.items()
            if name.startswith("runtime_")}


def _no_new_children(before):
    return [child for child in multiprocessing.active_children()
            if child not in before]


class TestFaultFree:
    def test_matches_serial_map(self):
        results, report = supervised_map(_square, PAYLOADS, processes=3)
        assert results == EXPECTED
        assert report == RuntimeReport(tasks=len(PAYLOADS))

    def test_empty_payloads(self):
        results, report = supervised_map(_square, [], processes=2)
        assert results == []
        assert report.tasks == 0

    def test_more_processes_than_tasks(self):
        results, _ = supervised_map(_square, [5, 6], processes=8)
        assert results == [25, 36]

    def test_processes_must_be_positive(self):
        with pytest.raises(ValueError):
            supervised_map(_square, PAYLOADS, processes=0)


class TestWorkerKill:
    def test_killed_workers_retry_byte_identical(self):
        plan = ProcessFaultPlan(kill_tasks=frozenset({1, 7}))
        obs = ObsContext()
        results, report = supervised_map(
            _square, PAYLOADS, processes=3, policy=FAST,
            fault_plan=plan, obs=obs,
        )
        assert results == EXPECTED
        assert report.worker_crashes >= 2
        assert report.task_retries >= 2
        assert report.degraded_serial == 0
        counters = _runtime_counters(obs)
        assert counters.get("runtime_worker_crashes_total", 0) >= 2
        assert counters.get("runtime_task_retries_total", 0) >= 2

    def test_crashed_workers_are_respawned(self):
        plan = ProcessFaultPlan(kill_tasks=frozenset({0, 4, 8}))
        _, report = supervised_map(_square, PAYLOADS, processes=2,
                                   policy=FAST, fault_plan=plan)
        assert report.worker_respawns >= 1

    def test_no_child_processes_survive(self):
        before = multiprocessing.active_children()
        plan = ProcessFaultPlan(kill_tasks=frozenset({2, 5}))
        results, _ = supervised_map(_square, PAYLOADS, processes=3,
                                    policy=FAST, fault_plan=plan)
        assert results == EXPECTED
        assert _no_new_children(before) == []


class TestDegradation:
    def test_exhausted_retries_degrade_to_serial_byte_identical(self):
        # The fault is persistent: every process-level attempt is killed,
        # so the task must finish on the in-process bottom rung.
        plan = ProcessFaultPlan(kill_tasks=frozenset({3}),
                                faulty_attempts=99)
        policy = SupervisorPolicy(max_task_retries=1, backoff_base_s=0.001)
        obs = ObsContext()
        results, report = supervised_map(
            _square, PAYLOADS, processes=2, policy=policy,
            fault_plan=plan, obs=obs,
        )
        assert results == EXPECTED
        assert report.degraded_serial >= 1
        assert _runtime_counters(obs).get(
            "runtime_degraded_serial_total", 0) >= 1

    def test_poison_tasks_retry_then_succeed(self):
        plan = ProcessFaultPlan(poison_tasks=frozenset({0, 9}))
        results, report = supervised_map(_square, PAYLOADS, processes=3,
                                         policy=FAST, fault_plan=plan)
        assert results == EXPECTED
        assert report.task_retries >= 2
        assert report.worker_crashes == 0

    def test_persistent_poison_degrades(self):
        plan = ProcessFaultPlan(poison_tasks=frozenset({6}),
                                faulty_attempts=99)
        policy = SupervisorPolicy(max_task_retries=2, backoff_base_s=0.001)
        results, report = supervised_map(_square, PAYLOADS, processes=2,
                                         policy=policy, fault_plan=plan)
        assert results == EXPECTED
        assert report.degraded_serial >= 1


class TestStragglers:
    def test_straggler_redispatch_is_deterministic(self):
        # Task 2 sleeps well past the deadline; a duplicate dispatch
        # finishes it, and first-result-wins keeps the output identical.
        plan = ProcessFaultPlan(delay_tasks=frozenset({2}),
                                delay_seconds=0.5)
        policy = SupervisorPolicy(backoff_base_s=0.001,
                                  task_deadline_s=0.05)
        obs = ObsContext()
        results, report = supervised_map(
            _square, PAYLOADS, processes=3, policy=policy,
            fault_plan=plan, obs=obs,
        )
        assert results == EXPECTED
        assert report.straggler_redispatches >= 1
        assert _runtime_counters(obs).get(
            "runtime_straggler_redispatches_total", 0) >= 1

    def test_delay_without_deadline_just_finishes(self):
        plan = ProcessFaultPlan(delay_tasks=frozenset({1}),
                                delay_seconds=0.05)
        results, report = supervised_map(_square, PAYLOADS, processes=2,
                                         policy=FAST, fault_plan=plan)
        assert results == EXPECTED
        assert report.straggler_redispatches == 0

    def test_hung_worker_with_no_retry_budget_is_terminated(self):
        # Regression: with the retry budget exhausted, an expired deadline
        # used to only set `deadline_fired` — the event loop then blocked
        # in connection.wait with no timeout, waiting forever on a worker
        # that never answers.  The hung worker must be terminated and the
        # task must finish on the in-process bottom rung.
        before = multiprocessing.active_children()
        plan = ProcessFaultPlan(delay_tasks=frozenset({1}),
                                delay_seconds=8.0)
        policy = SupervisorPolicy(max_task_retries=0, task_deadline_s=0.1,
                                  backoff_base_s=0.001)
        obs = ObsContext()
        results, report = supervised_map(
            _square, PAYLOADS[:4], processes=2, policy=policy,
            fault_plan=plan, obs=obs,
        )
        assert results == EXPECTED[:4]
        assert report.straggler_terminations >= 1
        assert report.degraded_serial >= 1
        assert _runtime_counters(obs).get(
            "runtime_straggler_terminations_total", 0) >= 1
        assert _no_new_children(before) == []


class TestInterruptHygiene:
    def test_aborted_map_reaps_every_worker(self):
        # An unpicklable payload makes the dispatch itself raise; the
        # supervisor's finally-shutdown must still leave no child behind.
        before = multiprocessing.active_children()
        payloads = [lambda: None for _ in range(4)]
        with pytest.raises(Exception):
            supervised_map(_square, payloads, processes=2)
        assert _no_new_children(before) == []


class TestPolicy:
    @pytest.mark.parametrize("kwargs", (
        dict(max_task_retries=-1),
        dict(backoff_base_s=-0.1),
        dict(backoff_cap_s=-1.0),
        dict(task_deadline_s=0.0),
        dict(task_deadline_s=-1.0),
        dict(max_worker_respawns=-1),
    ))
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorPolicy(**kwargs)

    def test_backoff_doubles_and_caps(self):
        policy = SupervisorPolicy(backoff_base_s=0.02, backoff_cap_s=0.05)
        assert policy.backoff(1) == pytest.approx(0.02)
        assert policy.backoff(2) == pytest.approx(0.04)
        assert policy.backoff(3) == pytest.approx(0.05)  # capped
        assert policy.backoff(10) == pytest.approx(0.05)
