"""Component-streaming pipelined executor: byte-identity vs barrier
execution under shard counts, worker processes, fault schedules,
checkpoint kill-resume, and journal composition.

The pipelined executor's hard contract is that overlapping the
pruning → pivot → refine phase barriers changes *when* work runs, never
*what* it computes: the candidate set and the final clustering (cluster
ids included) must be byte-identical to barrier execution for every
``{pruning shards, workers, fault plan}`` configuration.  The sealing
accumulator that makes the overlap safe is property-tested here against
:func:`~repro.pruning.components.connected_components` under arbitrary
shard-completion orders.
"""

import multiprocessing
import random
import shutil
import tempfile
from pathlib import Path

import pytest

from repro.core.acd import run_acd
from repro.crowd.cache import AnswerFile
from repro.crowd.worker import WorkerPool
from repro.datasets.registry import generate
from repro.experiments.configs import PRUNING_THRESHOLD, difficulty_model
from repro.obs import ObsContext
from repro.pruning.candidate import build_candidate_set
from repro.pruning.components import (
    IncrementalComponents,
    connected_components,
)
from repro.runtime.autoshard import (
    AUTO_MIN_RECORDS,
    resolve_auto_shards,
)
from repro.runtime.checkpoint import CheckpointMismatch, CheckpointStore
from repro.runtime.faults import ProcessFaultPlan
from repro.runtime.pipeline import run_pipeline
from repro.runtime.supervisor import SupervisorPolicy
from repro.similarity.composite import jaccard_similarity_function

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the pipelined worker pool requires the 'fork' start method",
)

SEED = 3
POLICY = SupervisorPolicy(backoff_base_s=0.005)

# The confused population gives every phase real crowd work: surviving
# inter-cluster edges (pivot rounds), over- and under-merges (refine
# operations), and multi-member components spanning pruning shards.
_DATASET = generate("largescale", scale=0.2, seed=0, confusion=0.25)
_CANDIDATES = build_candidate_set(
    _DATASET.records, jaccard_similarity_function(),
    threshold=PRUNING_THRESHOLD,
)
_WORKERS = WorkerPool(difficulty=difficulty_model("largescale"),
                      num_workers=3)


def _collect_events(obs):
    events = []

    def walk(span):
        for event in span.events:
            events.append((event["name"], event["attrs"]))
        for child in span.children:
            walk(child)

    for root in obs.tracer.roots:
        walk(root)
    return events


def _pipeline_outcome(pruning_shards=4, workers=0, fault_plan=None,
                      policy=POLICY, pre_pruned=False, journal_path=None,
                      checkpoints=None, resume=False, answers=None):
    # AnswerFile resolves each pair from a pair-seeded RNG, so a fresh
    # instance per run replays identical answers.
    source = answers if answers is not None else AnswerFile(_DATASET.gold,
                                                            _WORKERS)
    obs = ObsContext()
    kwargs = dict(
        threshold=PRUNING_THRESHOLD, workers=workers, seed=SEED, obs=obs,
        supervisor_policy=policy, fault_plan=fault_plan,
        journal_path=journal_path, checkpoints=checkpoints, resume=resume,
    )
    if pre_pruned:
        piped = run_pipeline(source, record_ids=_DATASET.record_ids,
                             candidates=_CANDIDATES, **kwargs)
    else:
        piped = run_pipeline(source, records=_DATASET.records,
                             similarity=jaccard_similarity_function(),
                             pruning_shards=pruning_shards, **kwargs)
    result = piped.result
    return {
        "pairs": piped.candidates.pairs,
        "scores": tuple(sorted(piped.candidates.machine_scores.items())),
        "threshold": piped.candidates.threshold,
        "clustering": result.clustering.to_state(),
        "stats": result.stats.snapshot(),
        "batches": list(result.stats.batch_sizes),
        "generation_stats": result.generation_stats,
        "refinement_stats": result.refinement_stats,
        # Scheduling telemetry (pipeline.* events, runtime counters and
        # events) legitimately varies with the configuration; the crowd
        # phases' event stream must not.
        "events": [e for e in _collect_events(obs)
                   if not e[0].startswith(("runtime", "pipeline."))],
        "counters": obs.metrics.as_dict()["counters"],
    }


def _core(outcome):
    """Everything that must be byte-identical to barrier execution."""
    return {key: value for key, value in outcome.items()
            if key not in ("events", "counters")}


def _identity_view(outcome):
    """Everything that must be byte-identical across pipelined
    configurations (fault counters naturally differ by schedule)."""
    return {key: value for key, value in outcome.items()
            if key != "counters"}


def _barrier_core():
    result = run_acd(
        _DATASET.record_ids, _CANDIDATES,
        AnswerFile(_DATASET.gold, _WORKERS), seed=SEED,
        pivot_shards=8, pivot_processes=2,
        refine_shards=8, refine_processes=2,
    )
    return {
        "pairs": _CANDIDATES.pairs,
        "scores": tuple(sorted(_CANDIDATES.machine_scores.items())),
        "threshold": _CANDIDATES.threshold,
        "clustering": result.clustering.to_state(),
        "stats": result.stats.snapshot(),
        "batches": list(result.stats.batch_sizes),
        "generation_stats": result.generation_stats,
        "refinement_stats": result.refinement_stats,
    }


class TestBarrierParity:
    def test_pipeline_matches_barrier_across_configs(self):
        """Streamed pruning + overlapped crowd phases reproduce barrier
        execution byte for byte at every {shards, workers} point, and
        the pipelined runs also agree on the crowd-phase event stream."""
        barrier = _barrier_core()
        outcomes = [
            _pipeline_outcome(pruning_shards=shards, workers=workers)
            for shards, workers in ((4, 0), (7, 2), (4, 4))
        ]
        for outcome in outcomes:
            assert _core(outcome) == barrier
        for outcome in outcomes[1:]:
            assert (_identity_view(outcome)
                    == _identity_view(outcomes[0]))

    def test_pre_pruned_entry_matches_barrier(self):
        """The record_ids+candidates entry shape (pruning already done)
        dispatches every component immediately and still matches."""
        outcome = _pipeline_outcome(pre_pruned=True, workers=2)
        assert _core(outcome) == _barrier_core()


class TestFaultByteIdentity:
    def test_every_fault_kind_is_byte_identical(self):
        reference = _identity_view(_pipeline_outcome(pruning_shards=6,
                                                     workers=4))
        plans = {
            "kill": ProcessFaultPlan.sample(6, seed=1, kills=2),
            # The pipeline rides out delays rather than racing
            # stragglers (pivot/refine tasks sleep on crowd latency),
            # so the plain policy applies to every kind.
            "delay": ProcessFaultPlan.sample(6, seed=1, delays=2,
                                             delay_seconds=0.5),
            "poison": ProcessFaultPlan.sample(6, seed=1, poisons=2),
        }
        for kind, plan in plans.items():
            chaotic = _pipeline_outcome(pruning_shards=6, workers=4,
                                        fault_plan=plan)
            assert _identity_view(chaotic) == reference, kind

    def test_kill_plan_actually_crashed_workers(self):
        outcome = _pipeline_outcome(
            pruning_shards=6, workers=4,
            fault_plan=ProcessFaultPlan.sample(6, seed=1, kills=2),
        )
        assert outcome["counters"].get("runtime_worker_crashes_total",
                                       0) >= 1


class TestJournalComposition:
    def test_journaled_pipelined_run_replays_byte_identical(self):
        """A journaled pipelined run re-invoked on the same journal
        serves every coordinator batch from the write-ahead log (the
        journal does not grow) and reports byte-identical."""
        from repro.crowd.persistence import AnswerJournal

        with tempfile.TemporaryDirectory() as tmp:
            journal = Path(tmp) / "run.journal"
            first = _pipeline_outcome(workers=2, journal_path=journal)
            batches_after_first = AnswerJournal(journal).num_batches
            replayed = _pipeline_outcome(workers=2, journal_path=journal)
            batches_after_replay = AnswerJournal(journal).num_batches
        assert batches_after_first >= 1
        assert batches_after_replay == batches_after_first
        assert _identity_view(replayed) == _identity_view(first)


class TestCheckpointKillResume:
    def test_resume_from_each_checkpoint(self):
        """A pipelined run killed right after each of the three phase
        checkpoints resumes byte-identical to an uninterrupted run; a
        run that completed refinement resumes without touching the
        crowd at all."""
        config = {"dataset": "largescale", "scale": 0.2, "seed": 0,
                  "pipeline": True, "pipeline_workers": 2}

        class Refusing:
            pair_deterministic = True
            num_workers = 3

            def confidence(self, a, b):
                raise AssertionError(
                    f"restored pipeline re-crowdsourced ({a}, {b})")

        uninterrupted = _pipeline_outcome(workers=2)
        with tempfile.TemporaryDirectory() as tmp:
            full = Path(tmp) / "full"
            first = _pipeline_outcome(
                workers=2,
                checkpoints=CheckpointStore(full, config=config))
            assert _identity_view(first) == _identity_view(uninterrupted)
            for phase in ("pruning", "generation", "refinement"):
                # Emulate a death right after `phase` was checkpointed:
                # copy the completed store and drop the later phases.
                partial = Path(tmp) / f"died-after-{phase}"
                shutil.copytree(full, partial)
                store = CheckpointStore(partial, config=config)
                if phase == "pruning":
                    store.clear("generation")
                if phase in ("pruning", "generation"):
                    store.clear("refinement")
                resumed = _pipeline_outcome(
                    workers=2, checkpoints=store, resume=True,
                    answers=(Refusing() if phase == "refinement"
                             else None))
                view = _identity_view(resumed)
                # Restored phases do not re-run, so their event stream
                # (and worker batches already accounted in the restored
                # stats) is absent by design; the authoritative outputs
                # must still match exactly.
                assert _core(resumed) == _core(uninterrupted), phase
                assert view["clustering"] == uninterrupted["clustering"]

    def test_resume_under_different_pipeline_config_fails_fast(self):
        """Regression: the checkpoint fingerprint must cover the
        pipeline knobs — resuming a barrier run's checkpoints with
        --pipeline (or a different worker count) must fail fast naming
        the differing keys, not silently splice executions."""
        base = {"dataset": "largescale", "scale": 0.2, "seed": 0,
                "pipeline": False, "pipeline_workers": 0}
        with tempfile.TemporaryDirectory() as tmp:
            store = CheckpointStore(tmp, config=base)
            store.save("pruning", {"pairs": [], "scores": [],
                                   "threshold": 0.7})
            for key, value in (("pipeline", True),
                               ("pipeline_workers", 4)):
                mismatched = CheckpointStore(tmp,
                                             config={**base, key: value})
                with pytest.raises(CheckpointMismatch) as excinfo:
                    mismatched.load("pruning")
                assert key in str(excinfo.value)


class TestAutoshard:
    def test_auto_resolves_by_tier(self):
        assert resolve_auto_shards(
            "pruning", records=AUTO_MIN_RECORDS, requested="auto") == 8
        assert resolve_auto_shards(
            "pruning", records=AUTO_MIN_RECORDS - 1, requested="auto") == 1
        assert resolve_auto_shards(
            "pivot", records=AUTO_MIN_RECORDS, requested="auto") == 64
        assert resolve_auto_shards(
            "pivot", records=100, requested="auto") == 0
        assert resolve_auto_shards(
            "refine", records=100, requested="auto") == 0

    def test_explicit_integers_pass_through(self):
        for kind in ("pruning", "pivot", "refine"):
            assert resolve_auto_shards(kind, records=1,
                                       requested=5) == 5

    def test_auto_resolution_is_observable(self):
        obs = ObsContext()
        with obs.span("setup"):
            resolve_auto_shards("pruning", records=AUTO_MIN_RECORDS,
                                requested="auto", obs=obs)
            resolve_auto_shards("pruning", records=10, requested=3,
                                obs=obs)
        events = [e for e in _collect_events(obs)
                  if e[0] == "runtime.autoshard"]
        # Explicit integers resolve silently; only "auto" is a decision.
        assert len(events) == 1
        assert events[0][1] == {"kind": "pruning",
                                "records": AUTO_MIN_RECORDS,
                                "threshold": AUTO_MIN_RECORDS,
                                "resolved": 8}
        counters = obs.metrics.as_dict()["counters"]
        assert counters["runtime_autoshard_total"] == 1

    def test_bad_string_rejected(self):
        with pytest.raises(ValueError):
            resolve_auto_shards("pruning", records=10, requested="fast")


class TestSealingMatchesConnectedComponents:
    """The sealing accumulator's correctness property: for *any* shard
    completion order, the sealed components plus the untouched
    singletons equal :func:`connected_components` over the full edge
    set, and each sealed component carries exactly its surviving
    edges."""

    def test_random_graphs_under_random_finish_orders(self):
        for trial in range(25):
            rng = random.Random(trial)
            num_vertices = rng.randint(1, 40)
            vertices = list(range(num_vertices))
            num_shards = rng.randint(1, 6)
            edges = []
            if num_vertices >= 2:
                for _ in range(rng.randint(0, 60)):
                    a, b = rng.sample(vertices, 2)
                    edges.append((min(a, b), max(a, b),
                                  rng.randrange(num_shards)))
            touch = {}
            for a, b, shard in edges:
                touch[a] = touch.get(a, 0) | (1 << shard)
                touch[b] = touch.get(b, 0) | (1 << shard)
            tracker = IncrementalComponents(vertices, touch, num_shards)
            order = list(range(num_shards))
            rng.shuffle(order)
            sealed = []
            for shard in order:
                for a, b, home in edges:
                    if home == shard:
                        tracker.add_edge(a, b)
                sealed.extend(tracker.finish_shard(shard))
            assert tracker.all_sealed
            components = [members for members, _ in sealed]
            components.extend((vertex,) for vertex in vertices
                              if vertex not in tracker.touched)
            components.sort(key=lambda members: members[0])
            assert components == connected_components(
                vertices, [(a, b) for a, b, _ in edges]), trial
            for members, component_edges in sealed:
                member_set = set(members)
                expected = tuple(sorted(
                    {(a, b) for a, b, _ in edges if a in member_set}))
                assert component_edges == expected, trial

    def test_edge_into_sealed_component_raises(self):
        tracker = IncrementalComponents([0, 1, 2], {0: 1, 1: 1}, 2)
        tracker.add_edge(0, 1)
        assert tracker.finish_shard(0) == [((0, 1), ((0, 1),))]
        with pytest.raises(RuntimeError):
            tracker.add_edge(0, 1)

    def test_unknown_vertex_rejected(self):
        tracker = IncrementalComponents([0, 1], {0: 1, 1: 1}, 1)
        with pytest.raises(ValueError):
            tracker.add_edge(0, 5)

    def test_untouched_vertices_are_not_materialized(self):
        """Lazy admission: vertices without edges never enter the
        union-find — the caller reconstructs them as singletons."""
        tracker = IncrementalComponents(range(1000), {7: 1, 8: 1}, 1)
        tracker.add_edge(7, 8)
        tracker.finish_shard(0)
        assert set(tracker.touched) == {7, 8}
        assert tracker.all_sealed
