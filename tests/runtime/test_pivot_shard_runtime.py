"""Sharded parallel cluster generation: byte-identity under processes,
fault schedules, and checkpoint kill-resume.

The cross-shard merge replays worker round logs through the caller's
oracle in a canonical component order, so the clustering, crowd stats,
diagnostics, and event streams must be byte-identical for every
``{shards, processes, fault plan}`` — and the clustering itself (cluster
IDs included) must equal the classic single-process engine's.
"""

import multiprocessing
import tempfile
import warnings
from pathlib import Path

import pytest

from repro.core.acd import run_acd
from repro.core.pc_pivot import PCPivotDiagnostics, pc_pivot
from repro.experiments.runner import prepare_instance
from repro.obs import ObsContext
from repro.pruning.parallel import ParallelFallbackWarning
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.faults import ProcessFaultPlan
from repro.runtime.supervisor import SupervisorPolicy

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the sharded generation pool requires the 'fork' start method",
)

SHARDS = 6
POLICY = SupervisorPolicy(backoff_base_s=0.005)


def _instance(scale=0.2, seed=0):
    # The largescale population: ~270 multi-vertex components at this
    # scale, so the shard bins and the worker pool get real work
    # (restaurant's candidate graph is one giant component and would
    # degrade every run to a single serial shard).
    return prepare_instance("largescale", "3w", scale=scale, seed=seed)


def _generation_outcome(instance, seed=3, shards=SHARDS, processes=0,
                        fault_plan=None, policy=POLICY):
    from repro.crowd.oracle import CrowdOracle

    oracle = CrowdOracle(instance.answers)
    diagnostics = PCPivotDiagnostics()
    obs = ObsContext()
    with obs.span("generation"):
        clustering = pc_pivot(
            instance.record_ids, instance.candidates, oracle, seed=seed,
            shards=shards, processes=processes, diagnostics=diagnostics,
            supervisor_policy=policy, fault_plan=fault_plan, obs=obs,
        )
    events = []

    def walk(span):
        for event in span.events:
            events.append((event["name"], event["attrs"]))
        for child in span.children:
            walk(child)

    for root in obs.tracer.roots:
        walk(root)
    return {
        "clustering": clustering.to_state(),
        "stats": oracle.stats.snapshot(),
        "batches": list(oracle.stats.batch_sizes),
        "ks": diagnostics.ks,
        "waste": diagnostics.predicted_waste,
        "issued": diagnostics.issued_per_round,
        "events": [e for e in events if not e[0].startswith("runtime")],
        "counters": obs.metrics.as_dict()["counters"],
    }


def _identity_view(outcome):
    """Everything that must be byte-identical across configurations
    (runtime fault counters naturally differ between schedules)."""
    return {key: value for key, value in outcome.items()
            if key != "counters"}


class TestProcessByteIdentity:
    def test_parallel_identical_to_in_process(self):
        instance = _instance()
        serial = _generation_outcome(_instance())
        for processes in (2, 4):
            parallel = _generation_outcome(_instance(), processes=processes)
            assert _identity_view(parallel) == _identity_view(serial)

    def test_parallel_clustering_identical_to_classic(self):
        from repro.crowd.oracle import CrowdOracle

        instance = _instance()
        classic = pc_pivot(instance.record_ids, instance.candidates,
                           CrowdOracle(instance.answers), seed=3)
        parallel = _generation_outcome(_instance(), processes=4)
        assert parallel["clustering"] == classic.to_state()


class TestFaultByteIdentity:
    def test_every_fault_kind_is_byte_identical(self):
        reference = _identity_view(_generation_outcome(_instance(),
                                                       processes=4))
        plans = {
            "kill": ProcessFaultPlan.sample(SHARDS, seed=1, kills=2),
            "delay": ProcessFaultPlan.sample(SHARDS, seed=1, delays=2,
                                             delay_seconds=0.5),
            "poison": ProcessFaultPlan.sample(SHARDS, seed=1, poisons=2),
        }
        policies = {
            "kill": POLICY,
            "delay": SupervisorPolicy(backoff_base_s=0.005,
                                      task_deadline_s=0.2),
            "poison": POLICY,
        }
        for kind, plan in plans.items():
            chaotic = _generation_outcome(_instance(), processes=4,
                                          fault_plan=plan,
                                          policy=policies[kind])
            assert _identity_view(chaotic) == reference, kind

    def test_kill_plan_actually_crashed_workers(self):
        outcome = _generation_outcome(
            _instance(), processes=4,
            fault_plan=ProcessFaultPlan.sample(SHARDS, seed=1, kills=2),
        )
        assert outcome["counters"].get("runtime_worker_crashes_total", 0) >= 1


class TestForkFallback:
    def test_fallback_warns_when_fork_unavailable(self, monkeypatch):
        import repro.core.pivot_shard as pivot_shard

        monkeypatch.setattr(pivot_shard, "fork_available", lambda: False)
        serial = _generation_outcome(_instance())
        with pytest.warns(ParallelFallbackWarning):
            fallen_back = _generation_outcome(_instance(), processes=4)
        view = _identity_view(fallen_back)
        view["events"] = [e for e in view["events"]
                          if e[0] != "pruning.parallel_fallback"]
        assert view == _identity_view(serial)


class TestCheckpointKillResume:
    def test_generation_checkpoint_resumes_sharded_run(self):
        """A run killed right after the sharded generation checkpoint
        resumes in a fresh process and finishes byte-identical to an
        uninterrupted sharded run — without re-running generation."""
        config = {"dataset": "largescale", "scale": 0.2, "seed": 0,
                  "pivot_shards": SHARDS}

        def acd(instance, checkpoints=None, resume=False):
            return run_acd(
                instance.record_ids, instance.candidates, instance.answers,
                seed=7, pivot_shards=SHARDS, pivot_processes=2,
                checkpoints=checkpoints, resume=resume,
            )

        uninterrupted = acd(_instance())
        with tempfile.TemporaryDirectory() as tmp:
            store = CheckpointStore(Path(tmp), config=config)
            first = acd(_instance(), checkpoints=store)
            assert store.load("generation") is not None

            class Refusing:
                """Fails the test if generation re-resolves any pair in
                the checkpointed answer set."""

                def __init__(self, source, allowed):
                    self._source = source
                    self._allowed = allowed

                pair_deterministic = True

                @property
                def num_workers(self):
                    return self._source.num_workers

                def confidence(self, a, b):
                    pair = (a, b) if a < b else (b, a)
                    assert pair not in self._allowed, (
                        f"resumed run re-crowdsourced generation pair {pair}"
                    )
                    return self._source.confidence(a, b)

            generation_pairs = {
                tuple(entry[:2])
                for entry in store.load("generation")["answers"]
            }
            resumed_store = CheckpointStore(Path(tmp), config=config)
            instance = _instance()
            guarded = Refusing(instance.answers, generation_pairs)
            import dataclasses
            instance = dataclasses.replace(instance, answers=guarded)
            resumed = acd(instance, checkpoints=resumed_store, resume=True)

        for result in (first, resumed):
            assert (result.clustering.to_state()
                    == uninterrupted.clustering.to_state())
            assert result.stats.snapshot() == uninterrupted.stats.snapshot()
            assert (result.stats.batch_sizes
                    == uninterrupted.stats.batch_sizes)
