"""Fork-state lifetime: the pre-fork snapshots never outlive their map.

``score_pairs_parallel`` and the sharded join publish their worker inputs
in module globals (``_FORK_STATE`` / ``_SHARD_STATE``) so fork can carry
closures to the workers.  Those globals must be empty again the moment the
map returns — on success *and* on failure — or a large run's texts and
join plan stay pinned in the parent for the rest of the process.
"""

import multiprocessing

import pytest

from repro.pruning import parallel as parallel_module
from repro.pruning.parallel import score_pairs_parallel
from repro.similarity.composite import (
    SET_METRIC_FUNCTIONS,
    jaccard_similarity_function,
)
from repro.similarity.kernels import numpy_available

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the fork pools require the 'fork' start method",
)

TEXTS = {
    0: "deep learning for entity resolution",
    1: "deep learning for entity matching",
    2: "crowdsourced data cleaning systems",
    3: "adaptive crowd based deduplication",
    4: "crowd based deduplication an adaptive approach",
}
PAIRS = [(a, b) for a in TEXTS for b in TEXTS if a < b]


def _jaccard(left: str, right: str) -> float:
    tokens_left, tokens_right = set(left.split()), set(right.split())
    union = tokens_left | tokens_right
    return len(tokens_left & tokens_right) / len(union) if union else 0.0


class TestScoreParallelState:
    def test_state_empty_after_successful_map(self):
        serial = score_pairs_parallel(PAIRS, TEXTS, _jaccard,
                                      threshold=0.1, processes=1)
        scored = score_pairs_parallel(PAIRS, TEXTS, _jaccard,
                                      threshold=0.1, processes=2,
                                      chunk_size=2)
        assert scored == serial
        assert parallel_module._FORK_STATE == {}

    def test_state_empty_after_failed_map(self, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("simulated pool failure")

        monkeypatch.setattr(parallel_module, "supervised_map", explode)
        with pytest.raises(RuntimeError):
            score_pairs_parallel(PAIRS, TEXTS, _jaccard,
                                 threshold=0.1, processes=2)
        assert parallel_module._FORK_STATE == {}


@pytest.mark.skipif(not numpy_available(),
                    reason="the sharded join requires numpy")
class TestShardJoinState:
    @staticmethod
    def _join(shard_module, **kwargs):
        from repro.datasets.schema import Record

        records = [Record(record_id=i, text=text)
                   for i, text in sorted(TEXTS.items())]
        similarity = jaccard_similarity_function()
        return shard_module.sharded_prefix_filtered_candidates(
            records, set_of=similarity.set_of,
            set_function=SET_METRIC_FUNCTIONS["jaccard"],
            metric="jaccard", threshold=0.1, num_shards=3, **kwargs,
        )

    def test_state_empty_after_successful_join(self):
        shard = pytest.importorskip("repro.pruning.shard")
        serial = self._join(shard)
        forked = self._join(shard, processes=2)
        assert forked == serial
        assert shard._SHARD_STATE == {}

    def test_state_empty_after_failed_join(self, monkeypatch):
        shard = pytest.importorskip("repro.pruning.shard")

        def explode(*args, **kwargs):
            raise RuntimeError("simulated pool failure")

        monkeypatch.setattr(shard, "supervised_map", explode)
        with pytest.raises(RuntimeError):
            self._join(shard, processes=2)
        assert shard._SHARD_STATE == {}
