"""Phase checkpoints: atomic snapshots, fingerprint validation, codecs."""

import json

import pytest

from repro.pruning.candidate import CandidateSet
from repro.runtime.checkpoint import (
    CHECKPOINT_PHASES,
    CHECKPOINT_VERSION,
    CheckpointMismatch,
    CheckpointStore,
    candidate_state,
    config_fingerprint,
    restore_candidates,
)

CONFIG = {"dataset": "restaurant", "scale": 0.1, "seed": 0}


class TestConfigFingerprint:
    def test_none_passes_through(self):
        assert config_fingerprint(None) is None

    def test_key_order_does_not_matter(self):
        assert (config_fingerprint({"a": 1, "b": 2})
                == config_fingerprint({"b": 2, "a": 1}))

    def test_value_changes_the_digest(self):
        assert (config_fingerprint({"a": 1})
                != config_fingerprint({"a": 2}))


class TestCheckpointStore:
    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path, config=CONFIG)
        payload = {"answer": 42, "scores": [0.1 + 0.2, 1 / 3]}
        path = store.save("pruning", payload)
        assert path == store.path("pruning")
        assert path.exists()
        assert store.load("pruning") == payload

    def test_missing_phase_loads_none(self, tmp_path):
        store = CheckpointStore(tmp_path, config=CONFIG)
        assert store.load("pruning") is None

    def test_fresh_store_reads_prior_snapshot(self, tmp_path):
        CheckpointStore(tmp_path, config=CONFIG).save("generation",
                                                      {"state": 1})
        reopened = CheckpointStore(tmp_path, config=CONFIG)
        assert reopened.load("generation") == {"state": 1}

    def test_corrupt_file_raises(self, tmp_path):
        store = CheckpointStore(tmp_path, config=CONFIG)
        store.path("pruning").write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt"):
            store.load("pruning")

    def test_wrong_version_raises(self, tmp_path):
        store = CheckpointStore(tmp_path, config=CONFIG)
        store.path("pruning").write_text(json.dumps({
            "checkpoint": CHECKPOINT_VERSION + 1, "phase": "pruning",
            "config": CONFIG, "payload": {},
        }), encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            store.load("pruning")

    def test_wrong_phase_in_file_raises(self, tmp_path):
        store = CheckpointStore(tmp_path, config=CONFIG)
        store.save("generation", {"state": 1})
        store.path("generation").rename(store.path("pruning"))
        with pytest.raises(ValueError):
            store.load("pruning")

    def test_config_mismatch_names_differing_keys(self, tmp_path):
        CheckpointStore(tmp_path, config=CONFIG).save("pruning", {})
        other = CheckpointStore(
            tmp_path, config={**CONFIG, "scale": 0.5, "seed": 9},
        )
        with pytest.raises(CheckpointMismatch) as excinfo:
            other.load("pruning")
        assert "scale" in str(excinfo.value)
        assert "seed" in str(excinfo.value)
        assert "dataset" not in str(excinfo.value)

    def test_unfingerprinted_store_accepts_any_checkpoint(self, tmp_path):
        CheckpointStore(tmp_path, config=CONFIG).save("pruning", {"x": 1})
        assert CheckpointStore(tmp_path).load("pruning") == {"x": 1}

    def test_fingerprinted_store_rejects_unfingerprinted_checkpoint(
            self, tmp_path):
        # Regression: a checkpoint recorded with `config: None` used to
        # slip past a fingerprinted store's validation — exactly the
        # phase-splicing hazard the fingerprint exists to reject.
        CheckpointStore(tmp_path).save("pruning", {"x": 1})
        store = CheckpointStore(tmp_path, config=CONFIG)
        with pytest.raises(CheckpointMismatch) as excinfo:
            store.load("pruning")
        assert "no run configuration" in str(excinfo.value)
        assert "dataset" in str(excinfo.value)

    def test_clear_one_phase(self, tmp_path):
        store = CheckpointStore(tmp_path, config=CONFIG)
        store.save("pruning", {})
        store.save("generation", {})
        store.clear("pruning")
        assert store.load("pruning") is None
        assert store.load("generation") == {}

    def test_clear_all_phases(self, tmp_path):
        store = CheckpointStore(tmp_path, config=CONFIG)
        for phase in CHECKPOINT_PHASES:
            store.save(phase, {})
        store.clear()
        assert all(store.load(phase) is None for phase in CHECKPOINT_PHASES)

    def test_clear_missing_is_a_noop(self, tmp_path):
        CheckpointStore(tmp_path, config=CONFIG).clear()


def _candidates() -> CandidateSet:
    pairs = ((0, 1), (0, 2), (3, 9))
    scores = {(0, 1): 0.1 + 0.2, (0, 2): 1 / 3, (3, 9): 0.9999999999999999}
    return CandidateSet(pairs=pairs, machine_scores=scores, threshold=0.3)


class TestCandidateCodec:
    def test_round_trip_is_byte_identical(self, tmp_path):
        original = _candidates()
        store = CheckpointStore(tmp_path, config=CONFIG)
        store.save("pruning", candidate_state(original))
        restored = restore_candidates(
            CheckpointStore(tmp_path, config=CONFIG).load("pruning"))
        assert restored.pairs == original.pairs
        # Exact float equality: json round-trips repr exactly.
        assert restored.machine_scores == original.machine_scores
        assert restored.threshold == original.threshold

    def test_direct_round_trip_without_store(self):
        original = _candidates()
        restored = restore_candidates(candidate_state(original))
        assert restored.pairs == original.pairs
        assert restored.machine_scores == original.machine_scores

    @pytest.mark.parametrize("payload", (
        {},
        {"threshold": 0.3},
        {"pairs": [[0, 1, 0.5]]},
        {"threshold": "not-a-number", "pairs": []},
        {"threshold": 0.3, "pairs": [[0, 1]]},
        {"threshold": 0.3, "pairs": [["a", "b", 0.5]]},
        {"threshold": 0.3, "pairs": [[0, 1, 0.5], [0, 1, 0.6]]},
    ))
    def test_malformed_payload_raises(self, payload):
        with pytest.raises(ValueError):
            restore_candidates(payload)
