"""End-to-end integration tests: the whole pipeline across datasets and
crowd settings, plus cross-cutting invariants that only show up when all
the pieces run together."""

import pytest

from repro.core.acd import run_acd
from repro.eval.cluster_metrics import full_report
from repro.eval.metrics import f1_score
from repro.experiments.runner import (
    ALL_METHODS,
    prepare_instance,
    run_comparison,
    run_method,
)


@pytest.mark.parametrize("dataset", ("paper", "restaurant", "product"))
@pytest.mark.parametrize("setting", ("3w", "5w"))
def test_acd_end_to_end(dataset, setting):
    instance = prepare_instance(dataset, setting, scale=0.12, seed=4)
    result = run_method("ACD", instance, seed=11)
    assert result.clustering.num_records == len(instance.dataset)
    result.clustering.check_invariants()
    assert 0.0 < result.f1 <= 1.0
    assert result.pairs_issued <= len(instance.candidates)
    assert result.iterations >= 1


def test_five_workers_never_much_worse(tiny_paper):
    """More workers should not hurt accuracy meaningfully (paper: all
    methods improve at 5w)."""
    three = prepare_instance("paper", "3w", scale=0.12, seed=6)
    five = prepare_instance("paper", "5w", scale=0.12, seed=6)
    f1_three = sum(run_method("ACD", three, seed=s).f1 for s in range(3)) / 3
    f1_five = sum(run_method("ACD", five, seed=s).f1 for s in range(3)) / 3
    assert f1_five >= f1_three - 0.05


def test_all_methods_partition_correctly(tiny_product):
    results = run_comparison(tiny_product, repetitions=1)
    for method in ALL_METHODS:
        clustering = results[method].clustering
        if clustering is None:
            continue
        clustering.check_invariants()
        assert clustering.num_records == len(tiny_product.dataset)


def test_pairs_issued_bounded_by_candidate_set(tiny_paper):
    """No method may crowdsource a pair outside S, so the unique-pair count
    is capped by |S|."""
    results = run_comparison(tiny_paper, repetitions=1)
    for method, result in results.items():
        assert result.pairs_issued <= len(tiny_paper.candidates), method


def test_acd_cluster_count_in_plausible_range(tiny_restaurant):
    result = run_method("ACD", tiny_restaurant, seed=2)
    true_entities = tiny_restaurant.dataset.num_entities
    assert 0.5 * true_entities <= result.num_clusters <= 1.5 * true_entities


def test_full_metric_report_consistency(tiny_product):
    """Pairwise F1 from the metric battery matches the runner's F1."""
    result = run_method("ACD", tiny_product, seed=3)
    report = full_report(result.clustering, tiny_product.dataset.gold)
    assert report["pairwise_f1"] == pytest.approx(result.f1)
    # B-cubed and pairwise should broadly agree on quality.
    assert abs(report["bcubed_f1"] - report["pairwise_f1"]) < 0.35


def test_answer_replay_across_methods(tiny_paper):
    """Two methods asking overlapping pairs must observe identical
    confidences (the file-F protocol)."""
    from repro.crowd.oracle import CrowdOracle
    from repro.baselines import crowder_plus, transm

    oracle_a = CrowdOracle(tiny_paper.answers)
    crowder_plus(tiny_paper.record_ids, tiny_paper.candidates, oracle_a)
    oracle_b = CrowdOracle(tiny_paper.answers)
    transm(tiny_paper.record_ids, tiny_paper.candidates, oracle_b)

    known_a = oracle_a.known_pairs()
    for pair, confidence in oracle_b.known_pairs().items():
        assert known_a[pair] == confidence


def test_acd_beats_machine_only(tiny_paper):
    """The crowd must add value over pure machine clustering — the paper's
    entire premise."""
    from repro.baselines import machine_pivot
    machine = machine_pivot(tiny_paper.record_ids, tiny_paper.candidates,
                            seed=5)
    acd = run_method("ACD", tiny_paper, seed=5)
    assert acd.f1 > f1_score(machine, tiny_paper.dataset.gold)


def test_deterministic_full_pipeline():
    """Same seeds end to end => byte-identical outcomes."""
    def run_once():
        instance = prepare_instance("product", "3w", scale=0.1, seed=8)
        result = run_acd(instance.record_ids, instance.candidates,
                         instance.answers, seed=9)
        return (result.clustering.as_sets(), result.stats.pairs_issued,
                result.stats.iterations)
    assert run_once() == run_once()
