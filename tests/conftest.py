"""Shared fixtures for the test suite.

The heavy fixtures (prepared experiment instances) are session-scoped and
small-scale, so the full suite stays fast while still exercising the real
pipeline end to end.
"""

from __future__ import annotations

import pytest

from repro.crowd.cache import ScriptedAnswers
from repro.crowd.oracle import CrowdOracle
from repro.experiments.runner import Instance, prepare_instance
from repro.pruning.candidate import CandidateSet


@pytest.fixture(scope="session")
def tiny_restaurant() -> Instance:
    """A small but realistic Restaurant instance (3-worker setting)."""
    return prepare_instance("restaurant", "3w", scale=0.1, seed=3)


@pytest.fixture(scope="session")
def tiny_paper() -> Instance:
    """A small Paper instance — the hard dataset with crowd errors."""
    return prepare_instance("paper", "3w", scale=0.1, seed=3)


@pytest.fixture(scope="session")
def tiny_product() -> Instance:
    """A small Product instance — sparse candidate graph."""
    return prepare_instance("product", "3w", scale=0.1, seed=3)


def make_candidates(scores) -> CandidateSet:
    """Build a CandidateSet directly from a {pair: machine score} mapping."""
    pairs = tuple(sorted((min(a, b), max(a, b)) for a, b in scores))
    machine = {(min(a, b), max(a, b)): s for (a, b), s in scores.items()}
    return CandidateSet(pairs=pairs, machine_scores=machine, threshold=0.3)


def scripted_oracle(confidences, num_workers: int = 1,
                    default=None) -> CrowdOracle:
    """An oracle over hand-written crowd confidences."""
    return CrowdOracle(
        ScriptedAnswers(confidences, num_workers=num_workers, default=default)
    )


# ---------------------------------------------------------------------------
# The paper's Figure 2 example graph (Section 4.2).
#
# Vertices a..f (0..5); every edge's crowd confidence is above 0.5.
# ---------------------------------------------------------------------------

FIG2_IDS = {"a": 0, "b": 1, "c": 2, "d": 3, "e": 4, "f": 5}

FIG2_EDGES = [
    ("a", "b"), ("b", "c"), ("a", "c"), ("c", "d"),
    ("a", "e"), ("d", "e"), ("e", "f"), ("d", "f"),
]


def fig2_candidates() -> CandidateSet:
    """Figure 2a's candidate graph with uniform machine scores."""
    return make_candidates({
        (FIG2_IDS[x], FIG2_IDS[y]): 0.8 for x, y in FIG2_EDGES
    })


def fig2_oracle() -> CrowdOracle:
    """All Figure 2 edges confirmed by the crowd (confidence 0.8)."""
    return scripted_oracle({
        (FIG2_IDS[x], FIG2_IDS[y]): 0.8 for x, y in FIG2_EDGES
    })
