"""Tests for repro.perf.timing (stage timers and the BENCH schema)."""

import pytest

from repro.perf.timing import (
    SCHEMA_VERSION,
    StageTimings,
    bench_payload,
    read_bench_json,
    run_entry,
    write_bench_json,
)


class TestStageTimings:
    def test_stage_records_duration(self):
        timings = StageTimings()
        with timings.stage("blocking"):
            pass
        assert timings.seconds("blocking") >= 0.0
        assert list(timings.as_dict()) == ["blocking"]

    def test_reentry_accumulates(self):
        timings = StageTimings()
        timings.add("scoring", 1.0)
        timings.add("scoring", 0.5)
        assert timings.seconds("scoring") == pytest.approx(1.5)

    def test_unknown_stage_is_zero(self):
        assert StageTimings().seconds("nope") == 0.0

    def test_total_sums_stages(self):
        timings = StageTimings()
        timings.add("blocking", 1.0)
        timings.add("scoring", 2.0)
        assert timings.total == pytest.approx(3.0)

    def test_total_excludes_explicit_total(self):
        timings = StageTimings()
        timings.add("blocking", 1.0)
        timings.add("total", 9.0)
        assert timings.total == pytest.approx(1.0)
        # ... but an explicit total wins in the serialized view.
        assert timings.with_total()["total"] == pytest.approx(9.0)

    def test_with_total_adds_key(self):
        timings = StageTimings()
        timings.add("scoring", 2.0)
        assert timings.with_total() == {"scoring": 2.0, "total": 2.0}

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            StageTimings().add("x", -0.1)


class TestBenchSchema:
    def test_payload_shape(self):
        timings = StageTimings()
        timings.add("blocking", 0.1)
        payload = bench_payload(
            "pruning",
            config={"scale": 2.0},
            runs={"paper/prefix": run_entry(timings, records=600)},
            derived={"speedup": 4.0},
        )
        assert payload["benchmark"] == "pruning"
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["config"] == {"scale": 2.0}
        entry = payload["runs"]["paper/prefix"]
        assert entry["meta"] == {"records": 600}
        assert entry["stages"]["total"] == pytest.approx(0.1)
        assert payload["derived"] == {"speedup": 4.0}

    def test_write_read_roundtrip(self, tmp_path):
        payload = bench_payload("endtoend", runs={})
        path = write_bench_json(tmp_path / "BENCH_test.json", payload)
        assert read_bench_json(path) == payload


class TestPruningInstrumentation:
    def test_build_candidate_set_records_stages(self):
        from repro.datasets.schema import Record
        from repro.pruning.candidate import build_candidate_set
        from repro.similarity.composite import jaccard_similarity_function

        records = [Record(record_id=i, text=t)
                   for i, t in enumerate(["a b c", "a b d", "x y"])]
        for engine in ("reference", "prefix"):
            timings = StageTimings()
            build_candidate_set(records, jaccard_similarity_function(),
                                engine=engine, timings=timings)
            stages = timings.as_dict()
            assert "blocking" in stages and "scoring" in stages, engine


class TestMeters:
    """Gauge meters: peak RSS and derived throughput rates."""

    def test_set_meter_overwrites(self):
        timings = StageTimings()
        timings.set_meter("records_per_second", 10.0)
        timings.set_meter("records_per_second", 20.0)
        assert timings.meters == {"records_per_second": 20.0}

    def test_no_meters_by_default(self):
        assert StageTimings().meters == {}

    def test_peak_rss_positive(self):
        from repro.perf.timing import peak_rss_bytes

        # A running interpreter occupies at least a few MiB.
        assert peak_rss_bytes() > 1 << 20

    def test_record_peak_rss_sets_meter(self):
        timings = StageTimings()
        peak = timings.record_peak_rss()
        assert peak > 0
        assert timings.meters["peak_rss_bytes"] == float(peak)

    def test_record_throughput_from_stage(self):
        timings = StageTimings()
        timings.add("scoring", 2.0)
        rate = timings.record_throughput("pairs_per_second", 100,
                                         stage="scoring")
        assert rate == pytest.approx(50.0)
        assert timings.meters["pairs_per_second"] == pytest.approx(50.0)

    def test_record_throughput_defaults_to_total(self):
        timings = StageTimings()
        timings.add("blocking", 1.0)
        timings.add("scoring", 3.0)
        rate = timings.record_throughput("records_per_second", 400)
        assert rate == pytest.approx(100.0)

    def test_record_throughput_unmeasurable_is_zero(self):
        timings = StageTimings()
        assert timings.record_throughput("records_per_second", 400) == 0.0

    def test_run_entry_includes_meters(self):
        timings = StageTimings()
        timings.add("scoring", 1.0)
        timings.set_meter("records_per_second", 42.0)
        entry = run_entry(timings, records=7)
        assert entry["meters"] == {"records_per_second": 42.0}
        assert entry["meta"] == {"records": 7}

    def test_run_entry_omits_empty_meters(self):
        timings = StageTimings()
        timings.add("scoring", 1.0)
        assert "meters" not in run_entry(timings)
