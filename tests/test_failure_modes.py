"""Failure-injection tests: the library must fail loudly and precisely.

Every public API boundary is probed with malformed or out-of-contract
input; the assertions pin both the exception type and (where it matters)
that no state was corrupted along the way.
"""

import pytest

from repro.core.clustering import Clustering
from repro.core.pc_pivot import pc_pivot
from repro.crowd.cache import ScriptedAnswers
from repro.crowd.oracle import CrowdOracle
from repro.datasets.schema import GoldStandard, Record, canonical_pair
from repro.pruning.candidate import CandidateSet
from tests.conftest import make_candidates, scripted_oracle


class TestCrowdBoundary:
    def test_unscripted_pair_fails_before_stats_are_charged(self):
        oracle = scripted_oracle({(0, 1): 0.9})
        with pytest.raises(KeyError):
            oracle.ask(5, 6)
        # The failed batch must not have been partially accounted.
        assert oracle.stats.pairs_issued == 0

    def test_mixed_batch_with_missing_answer_fails_atomically(self):
        oracle = scripted_oracle({(0, 1): 0.9})
        with pytest.raises(KeyError):
            oracle.ask_batch([(0, 1), (5, 6)])
        assert not oracle.knows(5, 6)
        assert oracle.stats.iterations == 0

    def test_gold_standard_unknown_record(self):
        gold = GoldStandard({0: 0})
        with pytest.raises(KeyError):
            gold.entity(99)
        with pytest.raises(KeyError):
            gold.is_duplicate(0, 99)

    def test_self_pair_rejected_everywhere(self):
        with pytest.raises(ValueError):
            canonical_pair(3, 3)
        answers = ScriptedAnswers({(0, 1): 0.5})
        with pytest.raises(ValueError):
            answers.confidence(3, 3)


class TestAlgorithmBoundary:
    def test_pivot_rejects_edges_to_unknown_records(self):
        """Candidate pairs referencing records outside R must fail at graph
        construction, not mid-clustering."""
        candidates = make_candidates({(0, 99): 0.8})
        oracle = scripted_oracle({(0, 99): 1.0})
        with pytest.raises(ValueError):
            pc_pivot([0, 1], candidates, oracle, seed=0)

    def test_clustering_rejects_unknown_record_queries(self):
        clustering = Clustering([{0, 1}])
        with pytest.raises(KeyError):
            clustering.cluster_of(7)
        with pytest.raises(KeyError):
            clustering.members(12345)

    def test_merge_of_dead_cluster_rejected(self):
        clustering = Clustering([{0}, {1}, {2}])
        survivor = clustering.merge(clustering.cluster_of(0),
                                    clustering.cluster_of(1))
        dead = ({clustering.cluster_of(0), clustering.cluster_of(1)}
                - {survivor})
        # All records now live in `survivor`; the absorbed id is gone.
        with pytest.raises(KeyError):
            clustering.members(next(iter(
                {0, 1, 2} - set(clustering.cluster_ids)
            ), 999))

    def test_empty_record_set_is_fine(self):
        candidates = CandidateSet(pairs=(), machine_scores={}, threshold=0.3)
        clustering = pc_pivot([], candidates, scripted_oracle({}), seed=0)
        assert len(clustering) == 0


class TestDatasetBoundary:
    def test_record_ids_must_be_unique(self):
        from repro.datasets.schema import Dataset
        with pytest.raises(ValueError):
            Dataset(
                name="dup",
                records=[Record(1, "a"), Record(1, "b")],
                gold=GoldStandard({1: 0}),
            )

    def test_scale_zero_rejected_by_all_generators(self):
        from repro.datasets.registry import dataset_names, generate
        for name in dataset_names():
            with pytest.raises(ValueError):
                generate(name, scale=0)


class TestPersistenceBoundary:
    def test_truncated_json_rejected(self, tmp_path):
        from repro.crowd.persistence import load_answers
        path = tmp_path / "broken.json"
        path.write_text('{"version": 1, "answers": [[0, 1')
        with pytest.raises(Exception):  # json decode or ValueError
            load_answers(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        from repro.crowd.persistence import load_answers
        with pytest.raises(OSError):
            load_answers(tmp_path / "nope.json")

    def test_confidence_outside_unit_interval_rejected(self, tmp_path):
        import json
        from repro.crowd.persistence import load_answers
        path = tmp_path / "bad_conf.json"
        path.write_text(json.dumps({
            "version": 1, "num_workers": 3, "answers": [[0, 1, 1.4]],
        }))
        with pytest.raises(ValueError, match=r"outside \[0, 1\]"):
            load_answers(path)

    def test_duplicate_pairs_rejected(self, tmp_path):
        import json
        from repro.crowd.persistence import load_answers
        path = tmp_path / "dup.json"
        path.write_text(json.dumps({
            "version": 1, "num_workers": 3,
            "answers": [[0, 1, 0.8], [1, 0, 0.2]],
        }))
        with pytest.raises(ValueError, match="duplicate"):
            load_answers(path)

    def test_self_pair_rejected(self, tmp_path):
        import json
        from repro.crowd.persistence import load_answers
        path = tmp_path / "self.json"
        path.write_text(json.dumps({
            "version": 1, "num_workers": 3, "answers": [[2, 2, 0.8]],
        }))
        with pytest.raises(ValueError, match="self-pair"):
            load_answers(path)

    def test_failed_save_leaves_existing_file_untouched(self, tmp_path):
        from repro.crowd.persistence import load_answers, save_answers

        class Explodes:
            num_workers = 3

            def confidence(self, a, b):
                if (a, b) == (2, 3):
                    raise RuntimeError("crowd went away")
                return 0.8

        path = tmp_path / "answers.json"
        save_answers(Explodes(), [(0, 1)], path)
        before = path.read_text()
        with pytest.raises(RuntimeError):
            save_answers(Explodes(), [(0, 1), (2, 3)], path)
        # Atomic write: the crash mid-save never touched the real file,
        # and no temp litter replaces it.
        assert path.read_text() == before
        assert load_answers(path).confidence(0, 1) == 0.8

    def test_dataset_csv_with_blank_text_loads(self, tmp_path):
        from repro.datasets.io import load_dataset
        path = tmp_path / "blank.csv"
        path.write_text("record_id,entity_id,text\n0,0,\n1,0,x\n")
        dataset = load_dataset(path)
        assert dataset.record(0).text == ""


def _fault_platform(seed, fault_model, **kwargs):
    from repro.crowd.platform import PlatformSimulator
    from repro.crowd.worker import DifficultyModel
    from repro.crowd.workforce import Workforce
    defaults = dict(pairs_per_hit=4, assignments_per_hit=3,
                    concurrent_workers=8, seed=seed)
    defaults.update(kwargs)
    return PlatformSimulator(
        workforce=Workforce(size=30, seed=seed),
        gold=GoldStandard({record: record // 2 for record in range(12)}),
        difficulty=DifficultyModel(easy_error=0.1),
        fault_model=fault_model,
        **defaults,
    )


_FAULT_PAIRS = [(a, b) for a in range(12) for b in range(a + 1, 12)
                if a // 2 == b // 2 or (a + b) % 3 == 0]


class TestFaultScenarios:
    """Deterministic fault-injection scenarios (ISSUE: robustness)."""

    def test_abandonment_scenario_is_reproducible(self):
        from repro.crowd.faults import ABANDONED, FaultModel
        fault = FaultModel(abandonment_probability=0.5, max_reposts=10,
                           backoff_base_seconds=1.0)
        runs = [_fault_platform(2, fault).post_batch(_FAULT_PAIRS)
                for _ in range(2)]
        assert runs[0].fault_events == runs[1].fault_events
        assert any(e.kind == ABANDONED for e in runs[0].fault_events)
        assert runs[0].confidences == runs[1].confidences

    def test_timeout_scenario_is_reproducible(self):
        from repro.crowd.faults import TIMEOUT, FaultModel
        fault = FaultModel(timeout_seconds=30.0, max_reposts=50,
                           backoff_base_seconds=1.0)
        runs = [
            _fault_platform(3, fault, mean_seconds_per_hit=40.0)
            .post_batch(_FAULT_PAIRS)
            for _ in range(2)
        ]
        assert any(e.kind == TIMEOUT for e in runs[0].fault_events)
        assert runs[0].fault_events == runs[1].fault_events

    def test_outage_scenario_stalls_all_work(self):
        from repro.crowd.faults import FaultModel
        fault = FaultModel(outages=((0.0, 300.0),))
        receipt = _fault_platform(4, fault).post_batch(_FAULT_PAIRS)
        assert all(a.started_at >= 300.0 for a in receipt.assignments)

    def test_zero_fault_model_reproduces_platform_byte_for_byte(self):
        """Property: a null FaultModel is indistinguishable from no model."""
        from repro.crowd.faults import FaultModel
        for seed in range(3):
            for batch in (_FAULT_PAIRS[:7], _FAULT_PAIRS):
                plain = _fault_platform(seed, None).post_batch(batch)
                null = _fault_platform(
                    seed, FaultModel.none()).post_batch(batch)
                assert plain.confidences == null.confidences
                assert plain.completed_at == null.completed_at
                assert plain.cost_cents == null.cost_cents
                assert plain.assignments == null.assignments


class TestCrashResume:
    def test_killed_run_resumes_to_identical_result(self, tmp_path):
        """Kill run_acd mid-flight; --resume must reproduce the
        uninterrupted ACDResult exactly."""
        from repro.core.acd import run_acd
        from repro.crowd.faults import FaultModel
        from repro.crowd.platform import PlatformAnswerFile
        from repro.datasets.registry import generate
        from repro.experiments.configs import (
            PRUNING_THRESHOLD,
            difficulty_model,
        )
        from repro.crowd.platform import PlatformSimulator
        from repro.crowd.workforce import Workforce
        from repro.pruning.candidate import build_candidate_set
        from repro.similarity.composite import jaccard_similarity_function

        dataset = generate("restaurant", scale=0.1, seed=3)
        candidates = build_candidate_set(
            dataset.records, jaccard_similarity_function(),
            threshold=PRUNING_THRESHOLD,
        )
        fault = FaultModel.default()

        def make_answers():
            workforce = Workforce(
                size=60, seed=3, spam_fraction=fault.spam_fraction,
                adversarial_fraction=fault.adversarial_fraction,
            )
            platform = PlatformSimulator(
                workforce, dataset.gold, difficulty_model("restaurant"),
                concurrent_workers=10, seed=3, fault_model=fault,
            )
            return PlatformAnswerFile(
                platform, fallback=lambda pair: candidates.score(*pair)
            )

        reference = run_acd(dataset.record_ids, candidates, make_answers(),
                            seed=11)

        class Killed(Exception):
            pass

        class KillSwitch:
            """Crash the process (well, the run) after N crowd batches."""

            def __init__(self, inner, batches_before_crash):
                self._inner = inner
                self._left = batches_before_crash

            @property
            def num_workers(self):
                return self._inner.num_workers

            def confidence_batch(self, pairs):
                if self._left == 0:
                    raise Killed()
                self._left -= 1
                return self._inner.confidence_batch(pairs)

            def drain_fault_counters(self):
                return self._inner.drain_fault_counters()

            def degraded_pairs(self):
                return self._inner.degraded_pairs()

            def skip_batches(self, count):
                self._inner.skip_batches(count)

        journal = tmp_path / "acd.wal"
        with pytest.raises(Killed):
            run_acd(dataset.record_ids, candidates,
                    KillSwitch(make_answers(), 2), seed=11,
                    journal_path=journal)
        assert journal.exists()

        resumed = run_acd(dataset.record_ids, candidates, make_answers(),
                          seed=11, journal_path=journal)
        assert (resumed.clustering.as_sets()
                == reference.clustering.as_sets())
        assert resumed.stats.snapshot() == reference.stats.snapshot()
        assert resumed.generation_stats == reference.generation_stats
        assert resumed.refinement_stats == reference.refinement_stats

    def test_journal_without_resume_changes_nothing(self, tmp_path):
        """A journaled run produces the same ACDResult as an unjournaled
        one — the WAL is pure insurance."""
        from repro.core.acd import run_acd
        from repro.crowd.cache import AnswerFile
        from repro.crowd.worker import WorkerPool
        from repro.datasets.registry import generate
        from repro.experiments.configs import (
            PRUNING_THRESHOLD,
            difficulty_model,
        )
        from repro.pruning.candidate import build_candidate_set
        from repro.similarity.composite import jaccard_similarity_function

        dataset = generate("restaurant", scale=0.1, seed=3)
        candidates = build_candidate_set(
            dataset.records, jaccard_similarity_function(),
            threshold=PRUNING_THRESHOLD,
        )

        def make_answers():
            return AnswerFile(dataset.gold, WorkerPool(
                difficulty=difficulty_model("restaurant"), num_workers=3,
            ))

        plain = run_acd(dataset.record_ids, candidates, make_answers(),
                        seed=11)
        journaled = run_acd(dataset.record_ids, candidates, make_answers(),
                            seed=11, journal_path=tmp_path / "run.wal")
        assert journaled.clustering.as_sets() == plain.clustering.as_sets()
        assert journaled.stats.snapshot() == plain.stats.snapshot()


class TestJournalConfigFingerprint:
    """Resuming a journal recorded under different run settings must fail
    fast, before a single replayed answer can leak across experiments."""

    CONFIG = {"dataset": "restaurant", "scale": 0.1, "seed": 3,
              "method": "ACD"}

    def _new_journal(self, tmp_path, config):
        from repro.crowd.persistence import AnswerJournal
        with AnswerJournal(tmp_path / "run.wal", num_workers=3,
                           config=config) as journal:
            journal.append_batch({(0, 1): 0.9})
        return tmp_path / "run.wal"

    def test_matching_config_resumes(self, tmp_path):
        from repro.crowd.persistence import AnswerJournal
        path = self._new_journal(tmp_path, self.CONFIG)
        with AnswerJournal(path, num_workers=3,
                           config=dict(self.CONFIG)) as journal:
            assert journal.get((0, 1)) == 0.9
            assert journal.config == self.CONFIG

    def test_mismatched_config_names_the_differing_keys(self, tmp_path):
        from repro.crowd.persistence import AnswerJournal
        path = self._new_journal(tmp_path, self.CONFIG)
        other = dict(self.CONFIG, scale=0.5, seed=4)
        with pytest.raises(ValueError, match="scale, seed"):
            AnswerJournal(path, num_workers=3, config=other)

    def test_extra_or_missing_keys_also_mismatch(self, tmp_path):
        from repro.crowd.persistence import AnswerJournal
        path = self._new_journal(tmp_path, self.CONFIG)
        missing_key = {k: v for k, v in self.CONFIG.items()
                       if k != "method"}
        with pytest.raises(ValueError, match="method"):
            AnswerJournal(path, num_workers=3, config=missing_key)

    def test_headerless_config_journal_accepts_any_caller_config(
            self, tmp_path):
        # Journals written before the fingerprint existed carry no config;
        # they must keep resuming (the operator is on their own there).
        from repro.crowd.persistence import AnswerJournal
        path = self._new_journal(tmp_path, config=None)
        with AnswerJournal(path, num_workers=3,
                           config=self.CONFIG) as journal:
            assert journal.get((0, 1)) == 0.9

    def test_caller_without_config_resumes_and_inherits_recorded(
            self, tmp_path):
        from repro.crowd.persistence import AnswerJournal
        path = self._new_journal(tmp_path, self.CONFIG)
        with AnswerJournal(path, num_workers=3) as journal:
            assert journal.config == self.CONFIG

    def test_malformed_config_header_rejected(self, tmp_path):
        import json
        from repro.crowd.persistence import AnswerJournal
        path = tmp_path / "bad.wal"
        path.write_text(json.dumps(
            {"journal": 1, "num_workers": 3, "config": "not-a-dict"}
        ) + "\n")
        with pytest.raises(ValueError, match="config"):
            AnswerJournal(path, num_workers=3, config=self.CONFIG)

    def test_journaling_answer_file_forwards_config(self, tmp_path):
        from repro.crowd.persistence import (
            AnswerJournal,
            JournalingAnswerFile,
        )
        path = self._new_journal(tmp_path, self.CONFIG)
        source = ScriptedAnswers({(0, 1): 0.9}, num_workers=3)
        other = dict(self.CONFIG, dataset="paper")
        with pytest.raises(ValueError, match="dataset"):
            JournalingAnswerFile(source, path, config=other)
        wrapped = JournalingAnswerFile(source, path,
                                       config=dict(self.CONFIG))
        assert wrapped.resumed_answers == 1
        wrapped.close()
