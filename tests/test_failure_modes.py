"""Failure-injection tests: the library must fail loudly and precisely.

Every public API boundary is probed with malformed or out-of-contract
input; the assertions pin both the exception type and (where it matters)
that no state was corrupted along the way.
"""

import pytest

from repro.core.clustering import Clustering
from repro.core.pc_pivot import pc_pivot
from repro.crowd.cache import ScriptedAnswers
from repro.crowd.oracle import CrowdOracle
from repro.datasets.schema import GoldStandard, Record, canonical_pair
from repro.pruning.candidate import CandidateSet
from tests.conftest import make_candidates, scripted_oracle


class TestCrowdBoundary:
    def test_unscripted_pair_fails_before_stats_are_charged(self):
        oracle = scripted_oracle({(0, 1): 0.9})
        with pytest.raises(KeyError):
            oracle.ask(5, 6)
        # The failed batch must not have been partially accounted.
        assert oracle.stats.pairs_issued == 0

    def test_mixed_batch_with_missing_answer_fails_atomically(self):
        oracle = scripted_oracle({(0, 1): 0.9})
        with pytest.raises(KeyError):
            oracle.ask_batch([(0, 1), (5, 6)])
        assert not oracle.knows(5, 6)
        assert oracle.stats.iterations == 0

    def test_gold_standard_unknown_record(self):
        gold = GoldStandard({0: 0})
        with pytest.raises(KeyError):
            gold.entity(99)
        with pytest.raises(KeyError):
            gold.is_duplicate(0, 99)

    def test_self_pair_rejected_everywhere(self):
        with pytest.raises(ValueError):
            canonical_pair(3, 3)
        answers = ScriptedAnswers({(0, 1): 0.5})
        with pytest.raises(ValueError):
            answers.confidence(3, 3)


class TestAlgorithmBoundary:
    def test_pivot_rejects_edges_to_unknown_records(self):
        """Candidate pairs referencing records outside R must fail at graph
        construction, not mid-clustering."""
        candidates = make_candidates({(0, 99): 0.8})
        oracle = scripted_oracle({(0, 99): 1.0})
        with pytest.raises(ValueError):
            pc_pivot([0, 1], candidates, oracle, seed=0)

    def test_clustering_rejects_unknown_record_queries(self):
        clustering = Clustering([{0, 1}])
        with pytest.raises(KeyError):
            clustering.cluster_of(7)
        with pytest.raises(KeyError):
            clustering.members(12345)

    def test_merge_of_dead_cluster_rejected(self):
        clustering = Clustering([{0}, {1}, {2}])
        survivor = clustering.merge(clustering.cluster_of(0),
                                    clustering.cluster_of(1))
        dead = ({clustering.cluster_of(0), clustering.cluster_of(1)}
                - {survivor})
        # All records now live in `survivor`; the absorbed id is gone.
        with pytest.raises(KeyError):
            clustering.members(next(iter(
                {0, 1, 2} - set(clustering.cluster_ids)
            ), 999))

    def test_empty_record_set_is_fine(self):
        candidates = CandidateSet(pairs=(), machine_scores={}, threshold=0.3)
        clustering = pc_pivot([], candidates, scripted_oracle({}), seed=0)
        assert len(clustering) == 0


class TestDatasetBoundary:
    def test_record_ids_must_be_unique(self):
        from repro.datasets.schema import Dataset
        with pytest.raises(ValueError):
            Dataset(
                name="dup",
                records=[Record(1, "a"), Record(1, "b")],
                gold=GoldStandard({1: 0}),
            )

    def test_scale_zero_rejected_by_all_generators(self):
        from repro.datasets.registry import dataset_names, generate
        for name in dataset_names():
            with pytest.raises(ValueError):
                generate(name, scale=0)


class TestPersistenceBoundary:
    def test_truncated_json_rejected(self, tmp_path):
        from repro.crowd.persistence import load_answers
        path = tmp_path / "broken.json"
        path.write_text('{"version": 1, "answers": [[0, 1')
        with pytest.raises(Exception):  # json decode or ValueError
            load_answers(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        from repro.crowd.persistence import load_answers
        with pytest.raises(OSError):
            load_answers(tmp_path / "nope.json")

    def test_dataset_csv_with_blank_text_loads(self, tmp_path):
        from repro.datasets.io import load_dataset
        path = tmp_path / "blank.csv"
        path.write_text("record_id,entity_id,text\n0,0,\n1,0,x\n")
        dataset = load_dataset(path)
        assert dataset.record(0).text == ""
