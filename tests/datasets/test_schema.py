"""Tests for repro.datasets.schema."""

import pytest

from repro.datasets.schema import Dataset, GoldStandard, Record, canonical_pair


class TestRecord:
    def test_field_lookup(self):
        record = Record.make(1, "blue cafe", {"name": "blue cafe", "city": "nyc"})
        assert record.field("city") == "nyc"
        assert record.field("missing", "default") == "default"

    def test_hashable(self):
        assert hash(Record(1, "x")) == hash(Record(1, "x"))

    def test_make_sorts_fields(self):
        record = Record.make(1, "t", {"b": "2", "a": "1"})
        assert record.fields == (("a", "1"), ("b", "2"))


class TestCanonicalPair:
    def test_orders(self):
        assert canonical_pair(5, 2) == (2, 5)
        assert canonical_pair(2, 5) == (2, 5)

    def test_rejects_self_pair(self):
        with pytest.raises(ValueError):
            canonical_pair(3, 3)


@pytest.fixture
def gold():
    return GoldStandard({0: 10, 1: 10, 2: 10, 3: 20, 4: 30})


class TestGoldStandard:
    def test_entity_lookup(self, gold):
        assert gold.entity(0) == 10

    def test_is_duplicate(self, gold):
        assert gold.is_duplicate(0, 1)
        assert not gold.is_duplicate(0, 3)

    def test_num_entities(self, gold):
        assert gold.num_entities == 3

    def test_entity_members(self, gold):
        assert gold.entity_members(10) == frozenset({0, 1, 2})

    def test_clusters_partition_everything(self, gold):
        union = set()
        for cluster in gold.clusters():
            assert not (union & cluster)
            union |= cluster
        assert union == {0, 1, 2, 3, 4}

    def test_duplicate_pairs(self, gold):
        assert set(gold.duplicate_pairs()) == {(0, 1), (0, 2), (1, 2)}

    def test_num_duplicate_pairs(self, gold):
        assert gold.num_duplicate_pairs() == 3

    def test_contains(self, gold):
        assert 0 in gold
        assert 99 not in gold


class TestDataset:
    def test_builds_and_indexes(self, gold):
        records = [Record(i, f"text {i}") for i in range(5)]
        dataset = Dataset(name="toy", records=records, gold=gold)
        assert dataset.record(3).text == "text 3"
        assert len(dataset) == 5
        assert dataset.num_entities == 3

    def test_summary(self, gold):
        records = [Record(i, "t") for i in range(5)]
        dataset = Dataset(name="toy", records=records, gold=gold)
        assert dataset.summary() == {
            "records": 5, "entities": 3, "duplicate_pairs": 3
        }

    def test_duplicate_record_ids_rejected(self, gold):
        records = [Record(0, "a"), Record(0, "b"),
                   Record(2, "c"), Record(3, "d"), Record(4, "e")]
        with pytest.raises(ValueError):
            Dataset(name="bad", records=records, gold=gold)

    def test_record_missing_from_gold_rejected(self):
        with pytest.raises(ValueError):
            Dataset(
                name="bad",
                records=[Record(0, "a"), Record(1, "b")],
                gold=GoldStandard({0: 0}),
            )
