"""Tests for repro.datasets.poolgen."""

import random

import pytest

from repro.datasets.poolgen import expand_pool, scaled_size, synthesize_token


class TestSynthesizeToken:
    def test_nonempty_and_lowercase(self):
        rng = random.Random(0)
        for _ in range(50):
            token = synthesize_token(rng)
            assert token
            assert token == token.lower()

    def test_deterministic(self):
        assert synthesize_token(random.Random(3)) == synthesize_token(
            random.Random(3)
        )

    def test_syllable_count_grows_length(self):
        rng = random.Random(1)
        short = [synthesize_token(random.Random(i), syllables=1)
                 for i in range(20)]
        long = [synthesize_token(random.Random(i), syllables=4)
                for i in range(20)]
        assert sum(map(len, long)) > sum(map(len, short))


class TestExpandPool:
    def test_truncates_when_base_suffices(self):
        assert expand_pool(["a", "b", "c"], 2, random.Random(0)) == ["a", "b"]

    def test_extends_when_base_short(self):
        pool = expand_pool(["a", "b"], 10, random.Random(0))
        assert pool[:2] == ["a", "b"]
        assert len(pool) == 10

    def test_all_distinct(self):
        pool = expand_pool(["a"], 200, random.Random(0))
        assert len(set(pool)) == 200

    def test_deterministic(self):
        a = expand_pool(["x"], 20, random.Random(5))
        b = expand_pool(["x"], 20, random.Random(5))
        assert a == b

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            expand_pool(["a"], 0, random.Random(0))


class TestScaledSize:
    def test_identity_at_scale_one(self):
        assert scaled_size(40, 1.0) == 40

    def test_sqrt_growth(self):
        assert scaled_size(40, 4.0) == 80

    def test_minimum_enforced(self):
        assert scaled_size(40, 0.0001) == 4

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled_size(40, 0.0)
