"""Tests for repro.datasets.io (CSV import/export)."""

import pytest

from repro.datasets.io import load_dataset, save_dataset
from repro.datasets.restaurant import generate_restaurant
from repro.datasets.schema import Dataset, GoldStandard, Record


@pytest.fixture
def dataset():
    records = [
        Record.make(0, "blue cafe", {"city": "nyc"}),
        Record.make(1, "blue cafe inc", {"city": "nyc", "phone": "555"}),
        Record.make(2, "red grill", {}),
    ]
    return Dataset(name="toy", records=records,
                   gold=GoldStandard({0: 0, 1: 0, 2: 1}))


class TestRoundTrip:
    def test_records_preserved(self, dataset, tmp_path):
        path = tmp_path / "toy.csv"
        assert save_dataset(dataset, path) == 3
        loaded = load_dataset(path)
        assert len(loaded) == 3
        assert loaded.record(1).text == "blue cafe inc"

    def test_gold_preserved(self, dataset, tmp_path):
        path = tmp_path / "toy.csv"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.gold.is_duplicate(0, 1)
        assert not loaded.gold.is_duplicate(0, 2)

    def test_fields_preserved(self, dataset, tmp_path):
        path = tmp_path / "toy.csv"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.record(1).field("phone") == "555"
        assert loaded.record(2).field("city") == ""

    def test_name_defaults_to_stem(self, dataset, tmp_path):
        path = tmp_path / "mydata.csv"
        save_dataset(dataset, path)
        assert load_dataset(path).name == "mydata"
        assert load_dataset(path, name="other").name == "other"

    def test_generated_dataset_round_trips(self, tmp_path):
        original = generate_restaurant(scale=0.05, seed=2)
        path = tmp_path / "restaurant.csv"
        save_dataset(original, path)
        loaded = load_dataset(path)
        assert [r.text for r in loaded.records] == [
            r.text for r in original.records
        ]
        assert loaded.gold.num_entities == original.gold.num_entities


class TestValidation:
    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("record_id,text\n1,x\n")
        with pytest.raises(ValueError, match="missing required columns"):
            load_dataset(path)

    def test_non_integer_ids(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("record_id,entity_id,text\nabc,0,x\n")
        with pytest.raises(ValueError, match="must be integers"):
            load_dataset(path)

    def test_duplicate_record_ids(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("record_id,entity_id,text\n1,0,x\n1,0,y\n")
        with pytest.raises(ValueError, match="duplicate record_id"):
            load_dataset(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("record_id,entity_id,text\n")
        with pytest.raises(ValueError, match="no records"):
            load_dataset(path)

    def test_text_with_commas_and_quotes(self, tmp_path):
        tricky = Dataset(
            name="t",
            records=[Record(0, 'cafe "le monde", paris'), Record(1, "x")],
            gold=GoldStandard({0: 0, 1: 1}),
        )
        path = tmp_path / "tricky.csv"
        save_dataset(tricky, path)
        assert load_dataset(path).record(0).text == 'cafe "le monde", paris'
