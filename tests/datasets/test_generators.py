"""Tests for the three dataset generators and the registry."""

import pytest

from repro.datasets.paper import generate_paper
from repro.datasets.product import generate_product
from repro.datasets.registry import dataset_names, generate
from repro.datasets.restaurant import generate_restaurant


class TestRegistry:
    def test_names(self):
        assert dataset_names() == ["paper", "restaurant", "product"]

    def test_generate_by_name(self):
        dataset = generate("restaurant", scale=0.05, seed=1)
        assert dataset.name == "restaurant"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            generate("nonexistent")


class TestPaperGenerator:
    def test_full_scale_counts(self):
        dataset = generate_paper(scale=1.0, seed=0)
        assert len(dataset) == 997
        assert dataset.num_entities == 191

    def test_scale(self):
        dataset = generate_paper(scale=0.1, seed=0)
        assert len(dataset) == round(997 * 0.1)
        assert dataset.num_entities == round(191 * 0.1)

    def test_deterministic(self):
        a = generate_paper(scale=0.05, seed=7)
        b = generate_paper(scale=0.05, seed=7)
        assert [r.text for r in a.records] == [r.text for r in b.records]

    def test_different_seeds_differ(self):
        a = generate_paper(scale=0.05, seed=7)
        b = generate_paper(scale=0.05, seed=8)
        assert [r.text for r in a.records] != [r.text for r in b.records]

    def test_skewed_cluster_sizes(self):
        dataset = generate_paper(scale=0.3, seed=0)
        sizes = sorted(len(c) for c in dataset.gold.clusters())
        assert sizes[-1] >= 2 * (len(dataset) / dataset.num_entities)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            generate_paper(scale=0.0)


class TestRestaurantGenerator:
    def test_full_scale_counts(self):
        dataset = generate_restaurant(scale=1.0, seed=0)
        assert len(dataset) == 858
        assert dataset.num_entities == 752

    def test_mostly_singletons(self):
        dataset = generate_restaurant(scale=0.3, seed=0)
        sizes = [len(c) for c in dataset.gold.clusters()]
        assert max(sizes) == 2
        assert sizes.count(1) > sizes.count(2)

    def test_duplicated_count_matches_shape(self):
        dataset = generate_restaurant(scale=1.0, seed=0)
        pairs = dataset.gold.num_duplicate_pairs()
        assert pairs == 858 - 752  # every duplicated entity has exactly 2 records

    def test_deterministic(self):
        a = generate_restaurant(scale=0.05, seed=3)
        b = generate_restaurant(scale=0.05, seed=3)
        assert [r.text for r in a.records] == [r.text for r in b.records]


class TestProductGenerator:
    def test_full_scale_counts(self):
        dataset = generate_product(scale=1.0, seed=0)
        assert dataset.num_entities == 1076
        # Record count is approximate (entity copies are random) but close.
        assert abs(len(dataset) - 3073) < 3073 * 0.15

    def test_small_clusters(self):
        dataset = generate_product(scale=0.2, seed=0)
        assert max(len(c) for c in dataset.gold.clusters()) <= 4

    def test_deterministic(self):
        a = generate_product(scale=0.05, seed=3)
        b = generate_product(scale=0.05, seed=3)
        assert [r.text for r in a.records] == [r.text for r in b.records]

    def test_duplicates_share_model_token(self):
        dataset = generate_product(scale=0.1, seed=0)
        from repro.similarity.tokenize import token_set
        shared = 0
        total = 0
        for a, b in dataset.gold.duplicate_pairs():
            total += 1
            if token_set(dataset.record(a).text) & token_set(dataset.record(b).text):
                shared += 1
        assert shared / total > 0.9
