"""Tests for the synthetic largescale population generator."""

import pytest

from repro.datasets.largescale import (
    BASE_RECORDS,
    BLOCK_RECORDS,
    generate_largescale,
)
from repro.datasets.registry import dataset_names, extended_dataset_names, generate
from repro.experiments.configs import DIFFICULTY_MODELS


class TestRegistry:
    def test_core_names_unchanged(self):
        # The three paper datasets stay pinned; largescale is opt-in via the
        # extended list so sweep-all-datasets loops don't grow a 10k tier.
        assert dataset_names() == ["paper", "restaurant", "product"]

    def test_extended_names(self):
        assert extended_dataset_names() == [
            "paper", "restaurant", "product", "largescale",
        ]

    def test_generate_by_name(self):
        dataset = generate("largescale", scale=0.01, seed=1)
        assert dataset.name == "largescale"

    def test_difficulty_model_registered(self):
        assert "largescale" in DIFFICULTY_MODELS


class TestGenerator:
    def test_scale_controls_record_count(self):
        dataset = generate_largescale(scale=0.01, seed=0)
        assert len(dataset) == round(BASE_RECORDS * 0.01)

    def test_default_scale_is_10k(self):
        # scale=1.0 → BASE_RECORDS; checked via a cheap fractional tier.
        assert BASE_RECORDS == 10_000

    def test_deterministic(self):
        a = generate_largescale(scale=0.05, seed=7)
        b = generate_largescale(scale=0.05, seed=7)
        assert [r.text for r in a.records] == [r.text for r in b.records]
        assert set(a.gold.duplicate_pairs()) == set(b.gold.duplicate_pairs())

    def test_different_seeds_differ(self):
        a = generate_largescale(scale=0.05, seed=7)
        b = generate_largescale(scale=0.05, seed=8)
        assert [r.text for r in a.records] != [r.text for r in b.records]

    def test_blocked_zipf_bounds_cluster_sizes(self):
        # Entities never span blocks, so the largest duplicate cluster is
        # bounded by the block size however many records are generated —
        # the property that keeps gold-pair counts linear in n.
        dataset = generate_largescale(scale=0.5, seed=0)
        sizes = [len(c) for c in dataset.gold.clusters()]
        assert max(sizes) <= BLOCK_RECORDS
        assert max(sizes) >= 2  # some duplication exists

    def test_has_duplicates_and_singletons(self):
        dataset = generate_largescale(scale=0.1, seed=0)
        assert sum(1 for _ in dataset.gold.duplicate_pairs()) > 0
        assert dataset.num_entities < len(dataset)

    def test_record_ids_dense(self):
        dataset = generate_largescale(scale=0.02, seed=3)
        assert [r.record_id for r in dataset.records] == list(range(len(dataset)))

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            generate_largescale(scale=0.0)


class TestConfusionKnob:
    def test_zero_confusion_is_byte_identical_to_default(self):
        # confusion=0.0 must not perturb the generator's RNG stream: the
        # knob is strictly additive so existing tiers stay reproducible.
        plain = generate_largescale(scale=0.05, seed=4)
        zero = generate_largescale(scale=0.05, seed=4, confusion=0.0)
        assert [r.text for r in plain.records] == [r.text for r in zero.records]
        assert (set(plain.gold.duplicate_pairs())
                == set(zero.gold.duplicate_pairs()))

    def test_confusion_perturbs_texts_but_keeps_population_shape(self):
        plain = generate_largescale(scale=0.05, seed=4)
        confused = generate_largescale(scale=0.05, seed=4, confusion=0.3)
        assert ([r.text for r in plain.records]
                != [r.text for r in confused.records])
        # Confusion rewrites mention text (cross-entity borrowing + extra
        # drop noise); the population invariants — record count, dense
        # ids, real duplication — must survive.
        assert len(confused) == len(plain)
        assert ([r.record_id for r in confused.records]
                == list(range(len(confused))))
        assert sum(1 for _ in confused.gold.duplicate_pairs()) > 0

    def test_confusion_is_deterministic(self):
        a = generate_largescale(scale=0.05, seed=4, confusion=0.25)
        b = generate_largescale(scale=0.05, seed=4, confusion=0.25)
        assert [r.text for r in a.records] == [r.text for r in b.records]

    def test_invalid_confusion_rejected(self):
        for bad in (-0.1, 1.5):
            with pytest.raises(ValueError, match="confusion"):
                generate_largescale(scale=0.05, seed=0, confusion=bad)

    def test_registry_forwards_confusion(self):
        direct = generate_largescale(scale=0.05, seed=4, confusion=0.25)
        via_registry = generate("largescale", scale=0.05, seed=4,
                                confusion=0.25)
        assert ([r.text for r in direct.records]
                == [r.text for r in via_registry.records])
