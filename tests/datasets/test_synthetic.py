"""Tests for repro.datasets.synthetic (noise channels)."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datasets.synthetic import (
    abbreviate,
    abbreviate_words,
    corrupt_words,
    drop_words,
    noisy_variant,
    shuffle_some,
    typo,
    zipf_cluster_sizes,
)


class TestTypo:
    def test_empty_word_unchanged(self):
        assert typo("", random.Random(0)) == ""

    def test_result_is_one_edit_away(self):
        rng = random.Random(1)
        for _ in range(100):
            word = "restaurant"
            mutated = typo(word, rng)
            assert abs(len(mutated) - len(word)) <= 1

    def test_deterministic_given_rng(self):
        assert typo("hello", random.Random(7)) == typo("hello", random.Random(7))


class TestDropWords:
    def test_keeps_at_least(self):
        rng = random.Random(0)
        kept = drop_words(["a", "b"], rng, drop_rate=1.0, keep_at_least=1)
        assert kept == ["a"]

    def test_zero_rate_keeps_all(self):
        assert drop_words(["a", "b"], random.Random(0), drop_rate=0.0) == ["a", "b"]


class TestAbbreviate:
    def test_short_words_untouched(self):
        assert abbreviate("abc", random.Random(0)) == "abc"

    def test_abbreviation_is_prefix(self):
        rng = random.Random(3)
        for _ in range(50):
            short = abbreviate("international", rng)
            assert "international".startswith(short)
            assert len(short) < len("international")

    def test_rate_zero_is_identity(self):
        words = ["proceedings", "of", "conference"]
        assert abbreviate_words(words, random.Random(0), rate=0.0) == words


class TestShuffle:
    def test_zero_probability_keeps_order(self):
        words = ["a", "b", "c"]
        assert shuffle_some(words, random.Random(0), probability=0.0) == words

    def test_certain_shuffle_is_adjacent_transposition(self):
        words = ["a", "b", "c", "d"]
        shuffled = shuffle_some(words, random.Random(1), probability=1.0)
        assert sorted(shuffled) == sorted(words)
        diffs = [i for i, (x, y) in enumerate(zip(words, shuffled)) if x != y]
        assert len(diffs) == 2 and diffs[1] == diffs[0] + 1


class TestNoisyVariant:
    def test_zero_noise_is_identity(self):
        text = "golden cafe main st"
        result = noisy_variant(text, random.Random(0), typo_rate=0.0,
                               drop_rate=0.0, abbreviate_rate=0.0,
                               shuffle_probability=0.0)
        assert result == text

    def test_never_empty(self):
        rng = random.Random(2)
        for _ in range(50):
            assert noisy_variant("single", rng, drop_rate=0.99)


class TestZipfClusterSizes:
    def test_sums_exactly(self):
        sizes = zipf_cluster_sizes(997, 191, random.Random(0))
        assert sum(sizes) == 997
        assert len(sizes) == 191

    def test_all_positive(self):
        sizes = zipf_cluster_sizes(100, 90, random.Random(1))
        assert all(size >= 1 for size in sizes)

    def test_skewed(self):
        sizes = zipf_cluster_sizes(1000, 100, random.Random(2), skew=1.5)
        assert max(sizes) > 3 * (1000 / 100)  # a few big clusters exist

    def test_records_equal_entities(self):
        assert zipf_cluster_sizes(5, 5, random.Random(0)) == [1] * 5

    def test_too_few_records_rejected(self):
        with pytest.raises(ValueError):
            zipf_cluster_sizes(3, 5, random.Random(0))

    @given(st.integers(1, 50), st.integers(0, 200), st.integers(0, 10))
    def test_property_sum_and_positivity(self, entities, extra, seed):
        records = entities + extra
        sizes = zipf_cluster_sizes(records, entities, random.Random(seed))
        assert sum(sizes) == records
        assert len(sizes) == entities
        assert min(sizes) >= 1
